// Command smpbench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation section on the bundled synthetic
// datasets.
//
// Examples:
//
//	smpbench -experiment all
//	smpbench -experiment table1 -xmark 64MiB
//	smpbench -experiment fig7b -medline 32MiB -format markdown
//	smpbench -experiment table2 -queries M1,M5
//
// With -parallel N the harness instead exercises the public batch runner
// (smp.Batch): it generates -docs documents (-xmark bytes each, or
// -medline bytes for a MEDLINE query) and compares serial prefiltering
// against an N-worker pool sharing one compiled plan:
//
//	smpbench -parallel 4 -docs 16 -xmark 4MiB -queries XM13
//
// With -coldstart the harness measures the paper's static/runtime phase
// split directly: for each query it reports the compile time (static
// analysis including plan construction — matcher tables, tag interning,
// vocabulary orders), the first projection after compiling, and the
// steady-state projection time. Because every table is built at compile
// time, the first run should cost the same as the steady state:
//
//	smpbench -coldstart -xmark 4MiB -queries XM1,XM13,M4
//
// Combining -multi K with -intra W runs the unified-pipeline grid: one
// shared scan serving K queries, fanned out across 1..W segment-scan
// workers, each cell verified byte-identical to K independent serial
// passes before it is timed:
//
//	smpbench -multi 4 -intra 4 -xmark 8MiB
//
// With -scan the harness measures the raw candidate-scan kernel in
// isolation (no automaton replay, no output): the active kernel (SWAR
// unless SMP_SCAN_KERNEL=scalar pins the reference), the scalar reference
// kernel, and a pure bytes.IndexByte('<') sweep — the memchr reference,
// i.e. the platform's effective memory bandwidth for anchor finding. Each
// kernel row reports its throughput as a fraction of that reference:
//
//	smpbench -scan -xmark 32MiB
//
// With -index the harness measures the persistent candidate index: per
// query it builds the document's sidecar once, then compares repeated
// projection by rescanning against repeated replay of the stored candidate
// stream (byte-identical, verified every round) — the repeated-query
// speedup the sidecar buys and the one-off build cost it charges:
//
//	smpbench -index -xmark 16MiB -queries XM13,M4
//
// Every benchmark mode verifies byte-identity against the serial engine
// before timing and exits non-zero on any mismatch, so the harness doubles
// as a correctness gate. With -json FILE the modes append one trajectory
// point {rev, date, note, records} to FILE, where each record is
// {mode, k, w, input, mbps, allocs}; committed BENCH_*.json files track
// this trajectory across revisions. -compare BASE -against FRESH
// -threshold PCT gates a fresh trajectory file against a committed
// baseline, normalizing by each file's memchr reference record when
// present so the check cancels out machine-speed differences.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"smp"
	"smp/internal/compile"
	"smp/internal/core"
	"smp/internal/dtd"
	"smp/internal/experiments"
	"smp/internal/paths"
	"smp/internal/stats"
	"smp/internal/xmlgen"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "smpbench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("smpbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		experiment = fs.String("experiment", "all",
			fmt.Sprintf("experiment to run: one of %v or all", experiments.Names()))
		xmarkSize   = fs.String("xmark", "8MiB", "XMark-like document size")
		medlineSize = fs.String("medline", "8MiB", "MEDLINE-like document size")
		sweep       = fs.String("sweep", "", "comma-separated document sizes for the fig7a sweep (e.g. 1MiB,4MiB,16MiB)")
		budget      = fs.String("budget", "", "memory budget of the in-memory engine for fig7a (e.g. 16MiB)")
		seed        = fs.Uint64("seed", 0, "dataset generator seed")
		queries     = fs.String("queries", "", "comma-separated query IDs to restrict the workload (e.g. XM1,XM13,M5)")
		format      = fs.String("format", "text", "output format: text, markdown or csv")
		parallel    = fs.Int("parallel", 0, "corpus mode: shard a batch of documents across N workers (0 = run the paper experiments)")
		docs        = fs.Int("docs", 16, "corpus mode: number of generated documents in the batch")
		coldstart   = fs.Bool("coldstart", false, "cold-start mode: report compile, first-run and steady-state time per query")
		intra       = fs.Int("intra", 0, "intra-document mode: split one document across N scan workers and compare against the serial engine (0 = off)")
		multi       = fs.Int("multi", 0, "multi-query mode: project one document for K queries in one shared scan and compare against K independent passes (0 = off); combine with -intra for the K×W grid")
		scanMode    = fs.Bool("scan", false, "scan-kernel mode: measure raw candidate-scan throughput (SWAR, scalar reference, memchr bandwidth reference)")
		indexMode   = fs.Bool("index", false, "index mode: build each query's candidate-index sidecar once, then compare repeated replay against repeated rescanning (byte-identical, then timed)")
		serveURL    = fs.String("serve", "", "serve mode: load-test a running smpserve at this base URL (e.g. http://localhost:8080)")
		conns       = fs.Int("conns", 8, "serve mode: concurrent connections")
		serveDur    = fs.Duration("duration", 2*time.Second, "serve mode: timed length of each load phase")
		dupRatio    = fs.Float64("dup", 1.0, "serve mode: fraction of requests targeting the shared hot document (the coalescable traffic)")
		rate        = fs.Float64("rate", 0, "serve mode: open-loop arrival rate in requests/s across all connections (0 = closed loop)")
		useBody     = fs.Bool("body", false, "serve mode: re-upload the document in every request body instead of referencing the server's content-addressed cache")
		serveScrape = fs.Bool("metrics", true, "serve mode: verify /healthz build info and scrape /metrics at the end of the run for server-side latency percentiles")
		jsonPath    = fs.String("json", "", "append one trajectory point ({rev,date,note,records}) to this file")
		note        = fs.String("note", "", "free-form note stored in the -json trajectory point")
		comparePath = fs.String("compare", "", "compare mode: committed baseline trajectory file (use with -against)")
		againstPath = fs.String("against", "", "compare mode: fresh trajectory file to gate against -compare")
		threshold   = fs.Float64("threshold", 15, "compare mode: fail on throughput regressions beyond this percentage")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.Config{Seed: *seed}
	var err error
	if cfg.XMarkSize, err = parseSize(*xmarkSize); err != nil {
		return err
	}
	if cfg.MedlineSize, err = parseSize(*medlineSize); err != nil {
		return err
	}
	if *budget != "" {
		if cfg.MemoryBudget, err = parseSize(*budget); err != nil {
			return err
		}
	}
	if *sweep != "" {
		for _, s := range strings.Split(*sweep, ",") {
			v, err := parseSize(s)
			if err != nil {
				return err
			}
			cfg.SweepSizes = append(cfg.SweepSizes, v)
		}
	}
	if *queries != "" {
		cfg.Queries = strings.Split(*queries, ",")
	}

	if *comparePath != "" || *againstPath != "" {
		if *comparePath == "" || *againstPath == "" {
			return fmt.Errorf("compare mode needs both -compare BASELINE and -against FRESH")
		}
		return runCompare(*comparePath, *againstPath, *threshold, stdout)
	}

	blog := &benchLog{note: *note}
	var tables []*stats.Table
	switch {
	case *serveURL != "":
		xmarkExplicit := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "xmark" {
				xmarkExplicit = true
			}
		})
		t, err := runServe(ctx, serveConfig{
			url:      *serveURL,
			conns:    *conns,
			duration: *serveDur,
			dupRatio: *dupRatio,
			rate:     *rate,
			docSize:  serveWorkloadSize(cfg, xmarkExplicit),
			useBody:  *useBody,
			seed:     *seed,
			metrics:  *serveScrape,
		}, blog)
		if err != nil {
			return err
		}
		tables = []*stats.Table{t}
	case *scanMode:
		t, err := runScanKernel(ctx, cfg, blog)
		if err != nil {
			return err
		}
		tables = []*stats.Table{t}
	case *indexMode:
		t, err := runIndexMode(ctx, cfg, blog)
		if err != nil {
			return err
		}
		tables = []*stats.Table{t}
	case *coldstart:
		t, err := runColdStart(ctx, cfg, blog)
		if err != nil {
			return err
		}
		tables = []*stats.Table{t}
	case *multi > 0 && *intra > 0:
		t, err := runGrid(ctx, *multi, *intra, cfg, blog)
		if err != nil {
			return err
		}
		tables = []*stats.Table{t}
	case *parallel > 0:
		t, err := runCorpus(ctx, *parallel, *docs, cfg, blog)
		if err != nil {
			return err
		}
		tables = []*stats.Table{t}
	case *intra > 0:
		t, err := runIntraDoc(ctx, *intra, cfg, blog)
		if err != nil {
			return err
		}
		tables = []*stats.Table{t}
	case *multi > 0:
		t, err := runMultiQuery(ctx, *multi, cfg, blog)
		if err != nil {
			return err
		}
		tables = []*stats.Table{t}
	default:
		var err error
		tables, err = experiments.Run(*experiment, cfg)
		if err != nil {
			return err
		}
	}
	for i, t := range tables {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		switch *format {
		case "markdown":
			fmt.Fprint(stdout, t.Markdown())
		case "csv":
			fmt.Fprintf(stdout, "# %s\n%s", t.Title, t.CSV())
		case "text":
			fmt.Fprint(stdout, t.String())
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
	}
	if *jsonPath != "" {
		if err := blog.write(*jsonPath); err != nil {
			return err
		}
	}
	return nil
}

// benchRecord is one machine-readable measurement: the benchmark mode, the
// number of queries K and scan workers W of the configuration, the input
// variant (mmap/stream for projection modes; index/scan for the -index mode;
// the kernel name for -scan), the throughput in MiB/s, and the allocations
// per timed run. Input is part of the record key, so -compare only ever
// gates like against like — an indexed replay is never compared to a scan.
type benchRecord struct {
	Mode   string  `json:"mode"`
	K      int     `json:"k"`
	W      int     `json:"w"`
	Input  string  `json:"input,omitempty"`
	MBps   float64 `json:"mbps"`
	Allocs int64   `json:"allocs"`

	// Latency fields, emitted by the -serve load mode only (K = connection
	// count there; MBps counts document bytes offered).
	QPS   float64 `json:"qps,omitempty"`
	P50Ms float64 `json:"p50_ms,omitempty"`
	P95Ms float64 `json:"p95_ms,omitempty"`
	P99Ms float64 `json:"p99_ms,omitempty"`
}

// key identifies a record across trajectory points: two points' records
// with equal keys measure the same configuration.
func (r benchRecord) key() string {
	return fmt.Sprintf("%s k=%d w=%d input=%s", r.Mode, r.K, r.W, r.Input)
}

// benchPoint is one -json invocation of the harness: the git revision and
// date it measured, an optional free-form note, and its records. Committed
// BENCH_*.json files are arrays of points — the performance trajectory of
// the repository.
type benchPoint struct {
	Rev     string        `json:"rev"`
	Date    string        `json:"date"`
	Note    string        `json:"note,omitempty"`
	Records []benchRecord `json:"records"`
}

// benchLog collects the records of one harness invocation for -json.
type benchLog struct {
	note    string
	records []benchRecord
}

func (l *benchLog) add(mode string, k, w int, input string, mbps float64, allocs int64) {
	l.records = append(l.records, benchRecord{Mode: mode, K: k, W: w, Input: input, MBps: mbps, Allocs: allocs})
}

// addLatency records one serve-mode phase with its latency distribution.
func (l *benchLog) addLatency(mode string, k, w int, input string, mbps, qps float64, p50, p95, p99 time.Duration) {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	l.records = append(l.records, benchRecord{
		Mode: mode, K: k, W: w, Input: input, MBps: mbps,
		QPS: qps, P50Ms: ms(p50), P95Ms: ms(p95), P99Ms: ms(p99),
	})
}

// write appends this invocation as one trajectory point to path. An
// existing trajectory (or a legacy flat record array) is preserved; a
// missing or unreadable file starts a fresh trajectory.
func (l *benchLog) write(path string) error {
	if l.records == nil {
		l.records = []benchRecord{}
	}
	trajectory, err := readTrajectory(path)
	if err != nil {
		trajectory = nil
	}
	trajectory = append(trajectory, benchPoint{
		Rev:     gitRev(),
		Date:    time.Now().UTC().Format("2006-01-02"),
		Note:    l.note,
		Records: l.records,
	})
	data, err := json.MarshalIndent(trajectory, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// readTrajectory loads a trajectory file. A legacy flat record array (the
// pre-trajectory -json format) is wrapped as a single point.
func readTrajectory(path string) ([]benchPoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var trajectory []benchPoint
	if err := json.Unmarshal(data, &trajectory); err == nil {
		return trajectory, nil
	}
	var records []benchRecord
	if err := json.Unmarshal(data, &records); err != nil {
		return nil, fmt.Errorf("%s: neither a trajectory nor a record array: %w", path, err)
	}
	return []benchPoint{{Rev: "unknown", Records: records}}, nil
}

// gitRev best-effort resolves the short revision of the working tree; the
// trajectory stays usable outside a git checkout.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// nopWriteCloser adapts an in-memory buffer to the BatchJob.Dst contract.
type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }

// runCorpus is the -parallel mode: it generates a batch of XMark-like
// documents, verifies that a worker pool run (the public smp.Batch API,
// workers sharing one compiled plan) produces byte-identical output to the
// serial engine on every document, then prefilters the batch serially and
// with the pool and reports the aggregate throughput of both plus the
// speedup.
func runCorpus(ctx context.Context, workers, docCount int, cfg experiments.Config, blog *benchLog) (*stats.Table, error) {
	queryID := "XM13"
	if len(cfg.Queries) > 0 {
		queryID = cfg.Queries[0]
	}
	q, ok := xmlgen.QueryByID(queryID)
	if !ok {
		return nil, fmt.Errorf("unknown query %q", queryID)
	}
	dtdSource, gen, docSize := datasetFor(q, cfg)
	pf, err := smp.Compile(dtdSource, q.Paths, smp.Options{})
	if err != nil {
		return nil, err
	}

	docs := make([][]byte, docCount)
	jobs := make([]smp.BatchJob, docCount)
	for i := range jobs {
		docs[i] = gen(xmlgen.Config{TargetSize: docSize, Seed: cfg.Seed + uint64(i) + 1})
		jobs[i] = smp.BatchFromBytes(fmt.Sprintf("doc%02d", i), docs[i])
	}

	// Verify before timing: the pooled run must reproduce the serial
	// engine's output byte for byte on every document.
	want := make([][]byte, docCount)
	for i, doc := range docs {
		var buf bytes.Buffer
		if _, err := pf.Project(ctx, &buf, bytes.NewReader(doc)); err != nil {
			return nil, fmt.Errorf("document doc%02d: serial projection: %w", i, err)
		}
		want[i] = buf.Bytes()
	}
	got := make([]bytes.Buffer, docCount)
	verifyJobs := make([]smp.BatchJob, docCount)
	for i := range verifyJobs {
		dst := &got[i]
		verifyJobs[i] = smp.BatchFromBytes(fmt.Sprintf("doc%02d", i), docs[i])
		verifyJobs[i].Dst = func() (io.WriteCloser, error) { return nopWriteCloser{dst}, nil }
	}
	results, _ := (&smp.Batch{Prefilter: pf, Workers: workers}).Run(ctx, verifyJobs)
	for _, res := range results {
		if res.Err != nil {
			return nil, fmt.Errorf("document %s: %v", res.Name, res.Err)
		}
	}
	for i := range got {
		if !bytes.Equal(got[i].Bytes(), want[i]) {
			return nil, fmt.Errorf("document doc%02d: %d-worker batch output differs from the serial engine (%d vs %d bytes)",
				i, workers, got[i].Len(), len(want[i]))
		}
	}

	t := stats.NewTable(fmt.Sprintf("Corpus prefiltering, %d x %s, query %s", docCount, stats.FormatBytes(docSize), q.ID),
		"Workers", "Wall Time", "Aggregate MiB/s", "Output %", "Failed", "Speedup")
	var serial smp.BatchAggregate
	for _, w := range []int{1, workers} {
		batch := smp.Batch{Prefilter: pf, Workers: w}
		results, agg := batch.Run(ctx, jobs)
		for _, res := range results {
			if res.Err != nil {
				return nil, fmt.Errorf("document %s: %v", res.Name, res.Err)
			}
		}
		if w == 1 {
			serial = agg
		}
		blog.add("corpus", 1, w, "stream", agg.ThroughputMBps(), 0)
		t.AddRow(
			strconv.Itoa(w),
			stats.FormatDuration(agg.Elapsed),
			stats.FormatFloat(agg.ThroughputMBps()),
			stats.FormatPercent(100*agg.OutputRatio()),
			strconv.Itoa(agg.Failed),
			stats.FormatRatio(float64(serial.Elapsed), float64(agg.Elapsed)),
		)
		if w == workers && w == 1 {
			break // -parallel 1: the serial row is the whole story
		}
	}
	t.AddNote("%s", "pooled output verified byte-identical to the serial engine on every document before timing")
	return t, nil
}

// runIntraDoc is the -intra mode: it generates one document, prefilters it
// with the serial engine and with the unified pipeline at increasing
// segment-scan worker counts (the Project API with WithWorkers), verifies
// the parallel output is byte-identical, and reports the single-stream
// throughput and speedup of each configuration.
func runIntraDoc(ctx context.Context, workers int, cfg experiments.Config, blog *benchLog) (*stats.Table, error) {
	queryID := "XM13"
	if len(cfg.Queries) > 0 {
		queryID = cfg.Queries[0]
	}
	q, ok := xmlgen.QueryByID(queryID)
	if !ok {
		return nil, fmt.Errorf("unknown query %q", queryID)
	}
	dtdSource, gen, docSize := datasetFor(q, cfg)
	pf, err := smp.Compile(dtdSource, q.Paths, smp.Options{})
	if err != nil {
		return nil, err
	}
	doc := gen(xmlgen.Config{TargetSize: docSize, Seed: cfg.Seed + 1})

	var wantBuf bytes.Buffer
	if _, err := pf.Project(ctx, &wantBuf, bytes.NewReader(doc)); err != nil {
		return nil, fmt.Errorf("%s: serial projection: %w", q.ID, err)
	}
	want := wantBuf.Bytes()

	const rounds = 3
	t := stats.NewTable(
		fmt.Sprintf("Intra-document parallel projection, one %s document, query %s", stats.FormatBytes(docSize), q.ID),
		"Workers", "Wall Time", "MiB/s", "Output %", "Speedup")
	var serialElapsed int64
	for _, w := range workerLadder(workers) {
		var best int64
		var outBytes int64
		for i := 0; i < rounds; i++ {
			timer := stats.StartTimer()
			var outBuf bytes.Buffer
			var runStats smp.Stats
			_, err = pf.Project(ctx, &outBuf, bytes.NewReader(doc), smp.WithWorkers(w), smp.WithStatsInto(&runStats))
			out := outBuf.Bytes()
			elapsed := int64(timer.Elapsed())
			if err != nil {
				return nil, fmt.Errorf("%s: %d workers: %w", q.ID, w, err)
			}
			if !bytes.Equal(out, want) {
				return nil, fmt.Errorf("%s: %d workers: output differs from serial projection (%d vs %d bytes)",
					q.ID, w, len(out), len(want))
			}
			if i == 0 || elapsed < best {
				best = elapsed
			}
			outBytes = runStats.BytesWritten
		}
		if w == 1 {
			serialElapsed = best
		}
		blog.add("intra", 1, w, "stream", float64(len(doc))/(1<<20)/time.Duration(best).Seconds(), 0)
		t.AddRow(
			strconv.Itoa(w),
			stats.FormatDuration(time.Duration(best)),
			stats.FormatFloat(float64(len(doc))/(1<<20)/time.Duration(best).Seconds()),
			stats.FormatPercent(100*float64(outBytes)/float64(len(doc))),
			stats.FormatRatio(float64(serialElapsed), float64(best)),
		)
	}
	t.AddNote("%s", "parallel output verified byte-identical to the serial engine; speedup needs real cores — on a single-CPU container the pipeline is expected to run flat at best")
	return t, nil
}

// runMultiQuery is the -multi mode: it generates one document, prefilters it
// once per query with standalone engines (K independent passes) and once for
// all K queries together in a single shared scan (smp.MultiPrefilter),
// verifies every per-query output is byte-identical, and reports both wall
// times and the speedup. The win is algorithmic — one document scan instead
// of K — so it shows on a single core.
func runMultiQuery(ctx context.Context, k int, cfg experiments.Config, blog *benchLog) (*stats.Table, error) {
	qs, queryIDs, doc, mpf, err := multiWorkload(k, cfg)
	if err != nil {
		return nil, err
	}

	const rounds = 3
	t := stats.NewTable(
		fmt.Sprintf("Multi-query shared projection, one %s document, %d queries (%s)",
			stats.FormatBytes(int64(len(doc))), len(qs), strings.Join(queryIDs, ",")),
		"Mode", "Input", "Wall Time", "MiB/s", "Output %", "Speedup")

	// Baseline: K independent standalone passes over the same document.
	want := make([][]byte, len(qs))
	var independent int64
	for round := 0; round < rounds; round++ {
		timer := stats.StartTimer()
		for i := 0; i < mpf.Len(); i++ {
			var out bytes.Buffer
			if _, err := mpf.Query(i).Project(ctx, &out, bytes.NewReader(doc)); err != nil {
				return nil, fmt.Errorf("%s: independent pass: %w", qs[i].ID, err)
			}
			want[i] = out.Bytes()
		}
		if elapsed := int64(timer.Elapsed()); round == 0 || elapsed < independent {
			independent = elapsed
		}
	}
	var wantTotal int64
	for _, w := range want {
		wantTotal += int64(len(w))
	}
	inputMiB := float64(len(doc)) / (1 << 20)
	t.AddRow(
		fmt.Sprintf("%d independent passes", mpf.Len()),
		"stream",
		stats.FormatDuration(time.Duration(independent)),
		stats.FormatFloat(inputMiB*float64(mpf.Len())/time.Duration(independent).Seconds()),
		stats.FormatPercent(100*float64(wantTotal)/float64(len(doc)*mpf.Len())),
		stats.FormatRatio(1, 1),
	)

	// The shared-scan pass runs twice: once from an in-memory stream and
	// once from a regular file, where the engine memory-maps the document
	// and scans it in place. The Input column reports the path the engine
	// actually took (Stats.ZeroCopyInput), so a platform without mmap
	// support shows stream for both rows.
	docFile, err := writeTempDoc(doc)
	if err != nil {
		return nil, err
	}
	defer os.Remove(docFile)
	outs := make([]bytes.Buffer, mpf.Len())
	for _, fromFile := range []bool{false, true} {
		var shared int64
		var aggOut int64
		input := "stream"
		for round := 0; round < rounds; round++ {
			dsts := make([]io.Writer, mpf.Len())
			for i := range outs {
				outs[i].Reset()
				dsts[i] = &outs[i]
			}
			src := io.Reader(bytes.NewReader(doc))
			var f *os.File
			if fromFile {
				if f, err = os.Open(docFile); err != nil {
					return nil, err
				}
				src = f
			}
			var agg smp.Stats
			timer := stats.StartTimer()
			_, err := mpf.MultiProject(ctx, dsts, src, smp.WithStatsInto(&agg))
			elapsed := int64(timer.Elapsed())
			if f != nil {
				f.Close()
			}
			if err != nil {
				return nil, fmt.Errorf("shared pass: %w", err)
			}
			if round == 0 || elapsed < shared {
				shared = elapsed
			}
			aggOut = agg.BytesWritten
			if agg.ZeroCopyInput {
				input = "mmap"
			}
		}
		for i := range outs {
			if !bytes.Equal(outs[i].Bytes(), want[i]) {
				return nil, fmt.Errorf("%s: shared %s output differs from the independent pass (%d vs %d bytes)",
					qs[i].ID, input, outs[i].Len(), len(want[i]))
			}
		}
		blog.add("multi", mpf.Len(), 1, input, inputMiB*float64(mpf.Len())/time.Duration(shared).Seconds(), 0)
		t.AddRow(
			"1 shared scan",
			input,
			stats.FormatDuration(time.Duration(shared)),
			stats.FormatFloat(inputMiB*float64(mpf.Len())/time.Duration(shared).Seconds()),
			stats.FormatPercent(100*float64(aggOut)/float64(len(doc)*mpf.Len())),
			stats.FormatRatio(float64(independent), float64(shared)),
		)
	}
	t.AddNote("every per-query output verified byte-identical to its independent pass; MiB/s counts the document once per query served (one scan amortizes across %d queries); input=mmap scans the file in place with zero copies", mpf.Len())
	return t, nil
}

// writeTempDoc materializes a generated document as a regular file so a
// benchmark can exercise the zero-copy mmap input path. The caller removes
// the returned path.
func writeTempDoc(doc []byte) (string, error) {
	f, err := os.CreateTemp("", "smpbench-*.xml")
	if err != nil {
		return "", err
	}
	if _, err := f.Write(doc); err != nil {
		f.Close()
		os.Remove(f.Name())
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return "", err
	}
	return f.Name(), nil
}

// multiWorkload resolves the workload shared by the multi-query modes
// (-multi alone and the -multi/-intra grid): the first K benchmark queries
// of one dataset (or cfg.Queries verbatim), one generated document, and the
// compiled MultiPrefilter.
func multiWorkload(k int, cfg experiments.Config) ([]xmlgen.Query, []string, []byte, *smp.MultiPrefilter, error) {
	queryIDs := cfg.Queries
	if len(queryIDs) == 0 {
		all := xmlgen.XMarkQueries()
		if k > len(all) {
			k = len(all)
		}
		for _, q := range all[:k] {
			queryIDs = append(queryIDs, q.ID)
		}
	}
	qs := make([]xmlgen.Query, len(queryIDs))
	for i, id := range queryIDs {
		q, ok := xmlgen.QueryByID(id)
		if !ok {
			return nil, nil, nil, nil, fmt.Errorf("unknown query %q", id)
		}
		qs[i] = q
	}
	dtdSource, gen, docSize := datasetFor(qs[0], cfg)
	for _, q := range qs[1:] {
		if d, _, _ := datasetFor(q, cfg); d != dtdSource {
			return nil, nil, nil, nil, fmt.Errorf("multi-query mode needs queries from one dataset (got %s and %s)", qs[0].ID, q.ID)
		}
	}
	doc := gen(xmlgen.Config{TargetSize: docSize, Seed: cfg.Seed + 1})

	specs := make([]string, len(qs))
	for i, q := range qs {
		specs[i] = q.Paths
	}
	mpf, err := smp.CompileMulti(dtdSource, specs, smp.Options{})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return qs, queryIDs, doc, mpf, nil
}

// runGrid is the combined -multi K -intra W mode: one shared scan serves K
// queries while the candidate scan itself fans out across 1..W segment
// workers — the full unified K×W pipeline. Every cell is verified
// byte-identical to K independent serial passes before its timing counts.
func runGrid(ctx context.Context, k, workers int, cfg experiments.Config, blog *benchLog) (*stats.Table, error) {
	qs, queryIDs, doc, mpf, err := multiWorkload(k, cfg)
	if err != nil {
		return nil, err
	}

	// Reference: K independent serial passes with standalone engines.
	want := make([][]byte, mpf.Len())
	for i := range want {
		var out bytes.Buffer
		if _, err := mpf.Query(i).Project(ctx, &out, bytes.NewReader(doc)); err != nil {
			return nil, fmt.Errorf("%s: independent pass: %w", qs[i].ID, err)
		}
		want[i] = out.Bytes()
	}

	const rounds = 3
	t := stats.NewTable(
		fmt.Sprintf("Unified K×W pipeline, one %s document, %d queries (%s)",
			stats.FormatBytes(int64(len(doc))), len(qs), strings.Join(queryIDs, ",")),
		"Scan Workers", "Wall Time", "MiB/s", "Speedup")
	outs := make([]bytes.Buffer, mpf.Len())
	dsts := make([]io.Writer, mpf.Len())
	var base int64
	for _, w := range workerLadder(workers) {
		var best int64
		for round := 0; round < rounds; round++ {
			for i := range outs {
				outs[i].Reset()
				dsts[i] = &outs[i]
			}
			timer := stats.StartTimer()
			if _, err := mpf.MultiProject(ctx, dsts, bytes.NewReader(doc), smp.WithWorkers(w)); err != nil {
				return nil, fmt.Errorf("%d workers: %w", w, err)
			}
			elapsed := int64(timer.Elapsed())
			for i := range outs {
				if !bytes.Equal(outs[i].Bytes(), want[i]) {
					return nil, fmt.Errorf("%s: %d workers: output differs from the independent serial pass (%d vs %d bytes)",
						qs[i].ID, w, outs[i].Len(), len(want[i]))
				}
			}
			if round == 0 || elapsed < best {
				best = elapsed
			}
		}
		if w == 1 {
			base = best
		}
		mbps := float64(len(doc)) / (1 << 20) * float64(mpf.Len()) / time.Duration(best).Seconds()
		blog.add("grid", mpf.Len(), w, "stream", mbps, 0)
		t.AddRow(
			strconv.Itoa(w),
			stats.FormatDuration(time.Duration(best)),
			stats.FormatFloat(mbps),
			stats.FormatRatio(float64(base), float64(best)),
		)
	}
	t.AddNote("every cell verified byte-identical to %d independent serial passes before timing; MiB/s counts the document once per query served; scan-worker speedup needs real cores", mpf.Len())
	return t, nil
}

// workerLadder returns 1, 2, 4, ... up to and including max.
func workerLadder(max int) []int {
	ladder := []int{1}
	for w := 2; w < max; w *= 2 {
		ladder = append(ladder, w)
	}
	if max > 1 {
		ladder = append(ladder, max)
	}
	return ladder
}

// runColdStart is the -coldstart mode: for each query it times the static
// analysis (DTD parse, table compilation, plan construction with all matcher
// tables), the first projection after compiling and the steady-state
// projection, separating the paper's static phase from its runtime phase.
// With the Plan layer the first run pays no lazy table construction, so the
// First/Steady ratio should sit near 1. Each query runs twice — from an
// in-memory stream and from a regular file, where the engine memory-maps
// the input — with a fresh compile per variant so both First runs are
// genuine cold starts. The Input column reports the path the engine
// actually took (stream on platforms without mmap support).
func runColdStart(ctx context.Context, cfg experiments.Config, blog *benchLog) (*stats.Table, error) {
	queryIDs := cfg.Queries
	if len(queryIDs) == 0 {
		queryIDs = []string{"XM1", "XM13", "M4"}
	}

	t := stats.NewTable("Cold start — static analysis vs. first vs. steady-state run",
		"Query", "Input", "Compile", "Plan Bytes", "Matchers", "First Run", "Steady Run", "First/Steady")
	for _, id := range queryIDs {
		q, ok := xmlgen.QueryByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown query %q", id)
		}
		dtdSource, gen, docSize := datasetFor(q, cfg)
		doc := gen(xmlgen.Config{TargetSize: docSize, Seed: cfg.Seed + 1})
		docFile, err := writeTempDoc(doc)
		if err != nil {
			return nil, err
		}

		for _, fromFile := range []bool{false, true} {
			compileTimer := stats.StartTimer()
			pf, err := smp.Compile(dtdSource, q.Paths, smp.Options{})
			if err != nil {
				os.Remove(docFile)
				return nil, fmt.Errorf("%s: %w", q.ID, err)
			}
			compileElapsed := compileTimer.Elapsed()

			input := "stream"
			runOnce := func() (time.Duration, error) {
				src := io.Reader(bytes.NewReader(doc))
				var f *os.File
				if fromFile {
					var err error
					if f, err = os.Open(docFile); err != nil {
						return 0, err
					}
					defer f.Close()
					src = f
				}
				var runStats smp.Stats
				runTimer := stats.StartTimer()
				if _, err := pf.Project(ctx, io.Discard, src, smp.WithStatsInto(&runStats)); err != nil {
					return 0, err
				}
				elapsed := runTimer.Elapsed()
				if runStats.ZeroCopyInput {
					input = "mmap"
				}
				return elapsed, nil
			}

			first, err := runOnce()
			if err != nil {
				os.Remove(docFile)
				return nil, fmt.Errorf("%s: %w", q.ID, err)
			}

			// Steady state: the fastest of a few warmed runs.
			steady := first
			for i := 0; i < 5; i++ {
				elapsed, err := runOnce()
				if err != nil {
					os.Remove(docFile)
					return nil, fmt.Errorf("%s: %w", q.ID, err)
				}
				if elapsed < steady {
					steady = elapsed
				}
			}

			ps := pf.PlanStats()
			blog.add("coldstart", 1, 1, input, float64(len(doc))/(1<<20)/steady.Seconds(), 0)
			t.AddRow(
				q.ID,
				input,
				stats.FormatDuration(compileElapsed),
				stats.FormatBytes(ps.MemBytes),
				strconv.Itoa(ps.SingleMatchers+ps.MultiMatchers),
				stats.FormatDuration(first),
				stats.FormatDuration(steady),
				stats.FormatRatio(float64(first), float64(steady)),
			)
		}
		os.Remove(docFile)
	}
	t.AddNote("%s", "compile covers the full static analysis including plan construction (matcher tables, tag interning, vocabulary orders); the first run builds nothing lazily, so First/Steady ≈ 1 up to cache warmth; input=mmap scans the file in place with zero copies")
	return t, nil
}

// runScanKernel is the -scan mode: it measures the raw candidate-scan
// kernel on one generated document, with no automaton replay and no output
// — the layer the paper's "prefiltering at I/O speed" claim lives in.
// Three rows: the active kernel (SWAR unless SMP_SCAN_KERNEL=scalar pins
// the scalar reference), the scalar reference kernel, and a pure
// bytes.IndexByte('<') sweep — the memchr reference, i.e. the platform's
// effective memory bandwidth for anchor finding. Each row reports its
// throughput as a fraction of that reference. Both kernels' candidate
// streams are compared before timing, so the mode doubles as a full-size
// differential gate.
func runScanKernel(ctx context.Context, cfg experiments.Config, blog *benchLog) (*stats.Table, error) {
	queryID := "XM13"
	if len(cfg.Queries) > 0 {
		queryID = cfg.Queries[0]
	}
	q, ok := xmlgen.QueryByID(queryID)
	if !ok {
		return nil, fmt.Errorf("unknown query %q", queryID)
	}
	dtdSource, gen, docSize := datasetFor(q, cfg)
	doc := gen(xmlgen.Config{TargetSize: docSize, Seed: cfg.Seed + 1})

	schema, err := dtd.Parse(dtdSource)
	if err != nil {
		return nil, err
	}
	set, err := paths.ParseSet(q.Paths)
	if err != nil {
		return nil, err
	}
	table, err := compile.Compile(schema, set, compile.Options{})
	if err != nil {
		return nil, err
	}
	sp := core.NewScanPlan(core.NewPlan(table, core.Options{}))

	active := "swar"
	if os.Getenv("SMP_SCAN_KERNEL") == "scalar" {
		active = "scalar"
	}

	// Differential gate before timing: the dispatching kernel must emit
	// exactly the scalar reference kernel's candidate stream.
	var activeCands, scalarCands []core.Candidate
	activeCands = sp.NewScanner().Scan(activeCands, doc, 0, len(doc), true)
	scalarCands = sp.NewScanner().ScanScalar(scalarCands, doc, 0, len(doc), true)
	if len(activeCands) != len(scalarCands) {
		return nil, fmt.Errorf("kernel divergence: %d candidates (%s) vs %d (scalar)",
			len(activeCands), active, len(scalarCands))
	}
	for i := range activeCands {
		if activeCands[i] != scalarCands[i] {
			return nil, fmt.Errorf("kernel divergence at candidate %d: %+v (%s) vs %+v (scalar)",
				i, activeCands[i], active, scalarCands[i])
		}
	}

	// Scanner scratch and the candidate buffer persist across rounds,
	// matching the engine's steady state: the first (untimed) warmup round
	// pays the buffer growth, the timed rounds reuse it.
	swarScanner, scalarScanner := sp.NewScanner(), sp.NewScanner()
	var swarDst, scalarDst []core.Candidate
	kernels := []struct {
		name  string // trajectory record key, stable across revisions
		label string // table row label
		run   func() int
	}{
		{"scan", fmt.Sprintf("scan (%s)", active), func() int {
			swarDst = swarScanner.Scan(swarDst[:0], doc, 0, len(doc), true)
			return len(swarDst)
		}},
		{"scalar", "scalar reference", func() int {
			scalarDst = scalarScanner.ScanScalar(scalarDst[:0], doc, 0, len(doc), true)
			return len(scalarDst)
		}},
		{"memchr", "memchr (IndexByte '<')", func() int {
			n := 0
			for off := 0; off < len(doc); {
				i := bytes.IndexByte(doc[off:], '<')
				if i < 0 {
					break
				}
				off += i + 1
				n++
			}
			return n
		}},
	}

	const rounds = 5
	type measurement struct {
		best   time.Duration
		allocs int64
		count  int
	}
	results := make([]measurement, len(kernels))
	var memchrBest time.Duration
	for ki, k := range kernels {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var m measurement
		m.count = k.run() // warmup: grow the candidate buffer, fault in the document
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		for round := 0; round < rounds; round++ {
			timer := stats.StartTimer()
			m.count = k.run()
			if elapsed := timer.Elapsed(); round == 0 || elapsed < m.best {
				m.best = elapsed
			}
		}
		runtime.ReadMemStats(&ms1)
		m.allocs = int64(ms1.Mallocs-ms0.Mallocs) / rounds
		results[ki] = m
		if k.name == "memchr" {
			memchrBest = m.best
		}
	}

	t := stats.NewTable(
		fmt.Sprintf("Scan kernel bandwidth, one %s document, query %s vocabulary", stats.FormatBytes(docSize), q.ID),
		"Kernel", "Wall Time", "MiB/s", "% of memchr", "Allocs/Run", "Matches")
	inputMiB := float64(len(doc)) / (1 << 20)
	for ki, k := range kernels {
		m := results[ki]
		mbps := inputMiB / m.best.Seconds()
		blog.add("scan", 1, 1, k.name, mbps, m.allocs)
		t.AddRow(
			k.label,
			stats.FormatDuration(m.best),
			stats.FormatFloat(mbps),
			stats.FormatPercent(100*memchrBest.Seconds()/m.best.Seconds()),
			strconv.FormatInt(m.allocs, 10),
			strconv.Itoa(m.count),
		)
	}
	t.AddNote("candidate discovery only, no automaton replay or output; memchr is a pure bytes.IndexByte('<') sweep — the platform's memory-bandwidth reference for anchor finding; Matches counts candidates for the kernels and raw '<' anchors for memchr; active kernel: %s (pin with SMP_SCAN_KERNEL=scalar)", active)
	return t, nil
}

// runIndexMode is the -index mode: for each query it builds the document's
// candidate-index sidecar once (timed — the one-off cost a corpus pays per
// document), round-trips it through the wire encoding exactly as a later
// process would load it, then compares repeated projection by rescanning
// against repeated replay of the stored candidate stream. Every replay round
// is byte-compared against the scan output before its timing counts, so the
// mode doubles as an end-to-end gate on the index subsystem. Trajectory
// records: mode index-<dataset> with input=scan vs input=index (the speedup
// pair, never cross-compared), and index-build-<dataset> for the build cost.
func runIndexMode(ctx context.Context, cfg experiments.Config, blog *benchLog) (*stats.Table, error) {
	queryIDs := cfg.Queries
	if len(queryIDs) == 0 {
		queryIDs = []string{"XM13", "M4"}
	}
	const rounds = 5
	t := stats.NewTable("Persistent candidate index — build once, replay repeated queries",
		"Query", "Doc", "Build", "Sidecar", "Scan MiB/s", "Replay MiB/s", "Speedup")
	var refDoc []byte // last generated document; carries the memchr reference
	for _, id := range queryIDs {
		q, ok := xmlgen.QueryByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown query %q", id)
		}
		dtdSource, gen, docSize := datasetFor(q, cfg)
		ds := "xmark"
		if strings.HasPrefix(q.ID, "M") {
			ds = "medline"
		}
		doc := gen(xmlgen.Config{TargetSize: docSize, Seed: cfg.Seed + 1})
		refDoc = doc
		pf, err := smp.Compile(dtdSource, q.Paths, smp.Options{})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.ID, err)
		}

		// Baseline: the repeated-query cost without an index — every round
		// re-searches the document for keyword occurrences.
		var want []byte
		var scanBest int64
		for round := 0; round < rounds; round++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			var out bytes.Buffer
			timer := stats.StartTimer()
			if _, err := pf.Project(ctx, &out, bytes.NewReader(doc)); err != nil {
				return nil, fmt.Errorf("%s: scan: %w", q.ID, err)
			}
			elapsed := int64(timer.Elapsed())
			if round == 0 || elapsed < scanBest {
				scanBest = elapsed
			}
			want = out.Bytes()
		}

		buildTimer := stats.StartTimer()
		built := pf.BuildIndex(doc)
		buildElapsed := buildTimer.Elapsed()
		enc, err := built.Encode()
		if err != nil {
			return nil, fmt.Errorf("%s: encode: %w", q.ID, err)
		}
		ix, err := smp.DecodeIndex(enc)
		if err != nil {
			return nil, fmt.Errorf("%s: decode: %w", q.ID, err)
		}
		if err := ix.Bind(doc); err != nil {
			return nil, fmt.Errorf("%s: bind: %w", q.ID, err)
		}

		var replayBest int64
		for round := 0; round < rounds; round++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			var out bytes.Buffer
			var st smp.Stats
			timer := stats.StartTimer()
			if _, err := pf.Project(ctx, &out, nil, smp.WithIndex(ix), smp.WithStatsInto(&st)); err != nil {
				return nil, fmt.Errorf("%s: replay: %w", q.ID, err)
			}
			elapsed := int64(timer.Elapsed())
			if st.IndexHits != 1 {
				return nil, fmt.Errorf("%s: replay round %d fell back to scanning", q.ID, round)
			}
			if !bytes.Equal(out.Bytes(), want) {
				return nil, fmt.Errorf("%s: replay output differs from the scan path (%d vs %d bytes)",
					q.ID, out.Len(), len(want))
			}
			if round == 0 || elapsed < replayBest {
				replayBest = elapsed
			}
		}

		inputMiB := float64(len(doc)) / (1 << 20)
		scanMBps := inputMiB / time.Duration(scanBest).Seconds()
		replayMBps := inputMiB / time.Duration(replayBest).Seconds()
		blog.add("index-build-"+ds, 1, 1, "index", inputMiB/buildElapsed.Seconds(), 0)
		blog.add("index-"+ds, 1, 1, "scan", scanMBps, 0)
		blog.add("index-"+ds, 1, 1, "index", replayMBps, 0)
		t.AddRow(
			q.ID,
			stats.FormatBytes(int64(len(doc))),
			stats.FormatDuration(buildElapsed),
			stats.FormatBytes(int64(len(enc))),
			stats.FormatFloat(scanMBps),
			stats.FormatFloat(replayMBps),
			stats.FormatRatio(float64(scanBest), float64(replayBest)),
		)
	}
	// A memchr bandwidth reference over the last document, recorded under the
	// same key -scan mode uses, so -compare can normalize index trajectories
	// by machine speed exactly as it normalizes scan trajectories.
	if len(refDoc) > 0 {
		var memchrBest time.Duration
		for round := 0; round < rounds; round++ {
			timer := stats.StartTimer()
			for off := 0; off < len(refDoc); {
				i := bytes.IndexByte(refDoc[off:], '<')
				if i < 0 {
					break
				}
				off += i + 1
			}
			if elapsed := timer.Elapsed(); round == 0 || elapsed < memchrBest {
				memchrBest = elapsed
			}
		}
		blog.add("scan", 1, 1, "memchr", float64(len(refDoc))/(1<<20)/memchrBest.Seconds(), 0)
	}
	t.AddNote("%s", "every replay round byte-compared against the scan path before timing; the sidecar is decoded from its wire encoding and hash-verified against the document, exactly as a later process would load it; build is the one-off cost a corpus pays per document")
	return t, nil
}

// runCompare is the -compare mode, the CI regression gate: it loads two
// trajectory files, takes the latest point of each, and fails on any
// configuration whose throughput dropped more than threshold percent.
// When both points carry the memchr bandwidth reference record (-scan
// mode), throughputs are normalized by it first, so a slower CI machine
// does not read as a regression and a faster one does not mask it.
func runCompare(basePath, freshPath string, threshold float64, stdout io.Writer) error {
	baseTraj, err := readTrajectory(basePath)
	if err != nil {
		return err
	}
	freshTraj, err := readTrajectory(freshPath)
	if err != nil {
		return err
	}
	if len(baseTraj) == 0 || len(freshTraj) == 0 {
		return fmt.Errorf("empty trajectory (%s: %d points, %s: %d points)",
			basePath, len(baseTraj), freshPath, len(freshTraj))
	}
	base, fresh := baseTraj[len(baseTraj)-1], freshTraj[len(freshTraj)-1]

	memchrMBps := func(p benchPoint) float64 {
		for _, r := range p.Records {
			if r.Mode == "scan" && r.Input == "memchr" {
				return r.MBps
			}
		}
		return 0
	}
	baseRef, freshRef := memchrMBps(base), memchrMBps(fresh)
	normalized := baseRef > 0 && freshRef > 0

	freshByKey := make(map[string]benchRecord, len(fresh.Records))
	for _, r := range fresh.Records {
		freshByKey[r.key()] = r
	}

	t := stats.NewTable(
		fmt.Sprintf("Throughput: %s (%s) vs %s (%s), threshold %.0f%%",
			base.Rev, base.Date, fresh.Rev, fresh.Date, threshold),
		"Configuration", "Base MiB/s", "Fresh MiB/s", "Delta", "Verdict")
	var regressions []string
	compared := 0
	for _, b := range base.Records {
		if normalized && b.Mode == "scan" && b.Input == "memchr" {
			continue // the yardstick itself: machine speed, not code speed
		}
		f, ok := freshByKey[b.key()]
		if !ok {
			continue // the fresh run did not measure this configuration
		}
		bv, fv := b.MBps, f.MBps
		if normalized {
			bv /= baseRef
			fv /= freshRef
		}
		if bv <= 0 {
			continue
		}
		compared++
		delta := 100 * (fv - bv) / bv
		verdict := "ok"
		if delta < -threshold {
			verdict = "REGRESSION"
			regressions = append(regressions, fmt.Sprintf("%s: %+.1f%%", b.key(), delta))
		}
		t.AddRow(
			b.key(),
			stats.FormatFloat(b.MBps),
			stats.FormatFloat(f.MBps),
			fmt.Sprintf("%+.1f%%", delta),
			verdict,
		)
	}
	if normalized {
		t.AddNote("deltas normalized by each point's memchr bandwidth reference (base %.0f, fresh %.0f MiB/s) to cancel machine-speed differences", baseRef, freshRef)
	} else {
		t.AddNote("%s", "raw MiB/s comparison — no memchr reference record in one of the points")
	}
	fmt.Fprint(stdout, t.String())
	if compared == 0 {
		return fmt.Errorf("no comparable configurations between %s and %s", basePath, freshPath)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("throughput regressions beyond %.0f%%: %s", threshold, strings.Join(regressions, "; "))
	}
	return nil
}

// datasetFor resolves a benchmark query to its dataset: DTD source,
// document generator and configured document size (with the 4 MiB default).
// MEDLINE query IDs carry the "M" prefix; everything else is XMark.
func datasetFor(q xmlgen.Query, cfg experiments.Config) (dtdSource string, gen func(xmlgen.Config) []byte, docSize int64) {
	dtdSource, gen, docSize = xmlgen.XMarkDTD(), xmlgen.XMarkBytes, cfg.XMarkSize
	if strings.HasPrefix(q.ID, "M") {
		dtdSource, gen, docSize = xmlgen.MedlineDTD(), xmlgen.MedlineBytes, cfg.MedlineSize
	}
	if docSize <= 0 {
		docSize = 4 << 20
	}
	return dtdSource, gen, docSize
}

// parseSize parses sizes like "64MiB", "500KB", "2GiB" or plain byte counts.
func parseSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	units := []struct {
		suffix string
		factor int64
	}{
		{"GiB", 1 << 30}, {"GB", 1 << 30}, {"G", 1 << 30},
		{"MiB", 1 << 20}, {"MB", 1 << 20}, {"M", 1 << 20},
		{"KiB", 1 << 10}, {"KB", 1 << 10}, {"K", 1 << 10},
		{"B", 1},
	}
	for _, u := range units {
		if strings.HasSuffix(s, u.suffix) {
			v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimSuffix(s, u.suffix)), 64)
			if err != nil {
				return 0, fmt.Errorf("invalid size %q", s)
			}
			return int64(v * float64(u.factor)), nil
		}
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid size %q", s)
	}
	return v, nil
}
