// Command smpbench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation section on the bundled synthetic
// datasets.
//
// Examples:
//
//	smpbench -experiment all
//	smpbench -experiment table1 -xmark 64MiB
//	smpbench -experiment fig7b -medline 32MiB -format markdown
//	smpbench -experiment table2 -queries M1,M5
//
// With -parallel N the harness instead exercises the public batch runner
// (smp.Batch): it generates -docs documents (-xmark bytes each, or
// -medline bytes for a MEDLINE query) and compares serial prefiltering
// against an N-worker pool sharing one compiled plan:
//
//	smpbench -parallel 4 -docs 16 -xmark 4MiB -queries XM13
//
// With -coldstart the harness measures the paper's static/runtime phase
// split directly: for each query it reports the compile time (static
// analysis including plan construction — matcher tables, tag interning,
// vocabulary orders), the first projection after compiling, and the
// steady-state projection time. Because every table is built at compile
// time, the first run should cost the same as the steady state:
//
//	smpbench -coldstart -xmark 4MiB -queries XM1,XM13,M4
//
// Combining -multi K with -intra W runs the unified-pipeline grid: one
// shared scan serving K queries, fanned out across 1..W segment-scan
// workers, each cell verified byte-identical to K independent serial
// passes before it is timed:
//
//	smpbench -multi 4 -intra 4 -xmark 8MiB
//
// Every benchmark mode verifies byte-identity against the serial engine
// before timing and exits non-zero on any mismatch, so the harness doubles
// as a correctness gate. With -json FILE the modes also append machine-
// readable records ({mode, k, w, mbps}) to FILE for CI trend tracking.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"smp"
	"smp/internal/experiments"
	"smp/internal/stats"
	"smp/internal/xmlgen"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "smpbench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("smpbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		experiment = fs.String("experiment", "all",
			fmt.Sprintf("experiment to run: one of %v or all", experiments.Names()))
		xmarkSize   = fs.String("xmark", "8MiB", "XMark-like document size")
		medlineSize = fs.String("medline", "8MiB", "MEDLINE-like document size")
		sweep       = fs.String("sweep", "", "comma-separated document sizes for the fig7a sweep (e.g. 1MiB,4MiB,16MiB)")
		budget      = fs.String("budget", "", "memory budget of the in-memory engine for fig7a (e.g. 16MiB)")
		seed        = fs.Uint64("seed", 0, "dataset generator seed")
		queries     = fs.String("queries", "", "comma-separated query IDs to restrict the workload (e.g. XM1,XM13,M5)")
		format      = fs.String("format", "text", "output format: text, markdown or csv")
		parallel    = fs.Int("parallel", 0, "corpus mode: shard a batch of documents across N workers (0 = run the paper experiments)")
		docs        = fs.Int("docs", 16, "corpus mode: number of generated documents in the batch")
		coldstart   = fs.Bool("coldstart", false, "cold-start mode: report compile, first-run and steady-state time per query")
		intra       = fs.Int("intra", 0, "intra-document mode: split one document across N scan workers and compare against the serial engine (0 = off)")
		multi       = fs.Int("multi", 0, "multi-query mode: project one document for K queries in one shared scan and compare against K independent passes (0 = off); combine with -intra for the K×W grid")
		jsonPath    = fs.String("json", "", "also write machine-readable benchmark records ({mode,k,w,mbps}) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.Config{Seed: *seed}
	var err error
	if cfg.XMarkSize, err = parseSize(*xmarkSize); err != nil {
		return err
	}
	if cfg.MedlineSize, err = parseSize(*medlineSize); err != nil {
		return err
	}
	if *budget != "" {
		if cfg.MemoryBudget, err = parseSize(*budget); err != nil {
			return err
		}
	}
	if *sweep != "" {
		for _, s := range strings.Split(*sweep, ",") {
			v, err := parseSize(s)
			if err != nil {
				return err
			}
			cfg.SweepSizes = append(cfg.SweepSizes, v)
		}
	}
	if *queries != "" {
		cfg.Queries = strings.Split(*queries, ",")
	}

	blog := &benchLog{}
	var tables []*stats.Table
	switch {
	case *coldstart:
		t, err := runColdStart(ctx, cfg)
		if err != nil {
			return err
		}
		tables = []*stats.Table{t}
	case *multi > 0 && *intra > 0:
		t, err := runGrid(ctx, *multi, *intra, cfg, blog)
		if err != nil {
			return err
		}
		tables = []*stats.Table{t}
	case *parallel > 0:
		t, err := runCorpus(ctx, *parallel, *docs, cfg, blog)
		if err != nil {
			return err
		}
		tables = []*stats.Table{t}
	case *intra > 0:
		t, err := runIntraDoc(ctx, *intra, cfg, blog)
		if err != nil {
			return err
		}
		tables = []*stats.Table{t}
	case *multi > 0:
		t, err := runMultiQuery(ctx, *multi, cfg, blog)
		if err != nil {
			return err
		}
		tables = []*stats.Table{t}
	default:
		var err error
		tables, err = experiments.Run(*experiment, cfg)
		if err != nil {
			return err
		}
	}
	for i, t := range tables {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		switch *format {
		case "markdown":
			fmt.Fprint(stdout, t.Markdown())
		case "csv":
			fmt.Fprintf(stdout, "# %s\n%s", t.Title, t.CSV())
		case "text":
			fmt.Fprint(stdout, t.String())
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
	}
	if *jsonPath != "" {
		if err := blog.write(*jsonPath); err != nil {
			return err
		}
	}
	return nil
}

// benchRecord is one machine-readable measurement emitted by -json: the
// benchmark mode, the number of queries K and scan workers W of the
// configuration, and its throughput in MiB/s.
type benchRecord struct {
	Mode string  `json:"mode"`
	K    int     `json:"k"`
	W    int     `json:"w"`
	MBps float64 `json:"mbps"`
}

// benchLog collects the records of one harness invocation for -json.
type benchLog struct {
	records []benchRecord
}

func (l *benchLog) add(mode string, k, w int, mbps float64) {
	l.records = append(l.records, benchRecord{Mode: mode, K: k, W: w, MBps: mbps})
}

func (l *benchLog) write(path string) error {
	if l.records == nil {
		l.records = []benchRecord{}
	}
	data, err := json.MarshalIndent(l.records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// nopWriteCloser adapts an in-memory buffer to the BatchJob.Dst contract.
type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }

// runCorpus is the -parallel mode: it generates a batch of XMark-like
// documents, verifies that a worker pool run (the public smp.Batch API,
// workers sharing one compiled plan) produces byte-identical output to the
// serial engine on every document, then prefilters the batch serially and
// with the pool and reports the aggregate throughput of both plus the
// speedup.
func runCorpus(ctx context.Context, workers, docCount int, cfg experiments.Config, blog *benchLog) (*stats.Table, error) {
	queryID := "XM13"
	if len(cfg.Queries) > 0 {
		queryID = cfg.Queries[0]
	}
	q, ok := xmlgen.QueryByID(queryID)
	if !ok {
		return nil, fmt.Errorf("unknown query %q", queryID)
	}
	dtdSource, gen, docSize := datasetFor(q, cfg)
	pf, err := smp.Compile(dtdSource, q.Paths, smp.Options{})
	if err != nil {
		return nil, err
	}

	docs := make([][]byte, docCount)
	jobs := make([]smp.BatchJob, docCount)
	for i := range jobs {
		docs[i] = gen(xmlgen.Config{TargetSize: docSize, Seed: cfg.Seed + uint64(i) + 1})
		jobs[i] = smp.BatchFromBytes(fmt.Sprintf("doc%02d", i), docs[i])
	}

	// Verify before timing: the pooled run must reproduce the serial
	// engine's output byte for byte on every document.
	want := make([][]byte, docCount)
	for i, doc := range docs {
		var buf bytes.Buffer
		if _, err := pf.Project(ctx, &buf, bytes.NewReader(doc)); err != nil {
			return nil, fmt.Errorf("document doc%02d: serial projection: %w", i, err)
		}
		want[i] = buf.Bytes()
	}
	got := make([]bytes.Buffer, docCount)
	verifyJobs := make([]smp.BatchJob, docCount)
	for i := range verifyJobs {
		dst := &got[i]
		verifyJobs[i] = smp.BatchFromBytes(fmt.Sprintf("doc%02d", i), docs[i])
		verifyJobs[i].Dst = func() (io.WriteCloser, error) { return nopWriteCloser{dst}, nil }
	}
	results, _ := (&smp.Batch{Prefilter: pf, Workers: workers}).Run(ctx, verifyJobs)
	for _, res := range results {
		if res.Err != nil {
			return nil, fmt.Errorf("document %s: %v", res.Name, res.Err)
		}
	}
	for i := range got {
		if !bytes.Equal(got[i].Bytes(), want[i]) {
			return nil, fmt.Errorf("document doc%02d: %d-worker batch output differs from the serial engine (%d vs %d bytes)",
				i, workers, got[i].Len(), len(want[i]))
		}
	}

	t := stats.NewTable(fmt.Sprintf("Corpus prefiltering, %d x %s, query %s", docCount, stats.FormatBytes(docSize), q.ID),
		"Workers", "Wall Time", "Aggregate MiB/s", "Output %", "Failed", "Speedup")
	var serial smp.BatchAggregate
	for _, w := range []int{1, workers} {
		batch := smp.Batch{Prefilter: pf, Workers: w}
		results, agg := batch.Run(ctx, jobs)
		for _, res := range results {
			if res.Err != nil {
				return nil, fmt.Errorf("document %s: %v", res.Name, res.Err)
			}
		}
		if w == 1 {
			serial = agg
		}
		blog.add("corpus", 1, w, agg.ThroughputMBps())
		t.AddRow(
			strconv.Itoa(w),
			stats.FormatDuration(agg.Elapsed),
			stats.FormatFloat(agg.ThroughputMBps()),
			stats.FormatPercent(100*agg.OutputRatio()),
			strconv.Itoa(agg.Failed),
			stats.FormatRatio(float64(serial.Elapsed), float64(agg.Elapsed)),
		)
		if w == workers && w == 1 {
			break // -parallel 1: the serial row is the whole story
		}
	}
	t.AddNote("%s", "pooled output verified byte-identical to the serial engine on every document before timing")
	return t, nil
}

// runIntraDoc is the -intra mode: it generates one document, prefilters it
// with the serial engine and with the unified pipeline at increasing
// segment-scan worker counts (the Project API with WithWorkers), verifies
// the parallel output is byte-identical, and reports the single-stream
// throughput and speedup of each configuration.
func runIntraDoc(ctx context.Context, workers int, cfg experiments.Config, blog *benchLog) (*stats.Table, error) {
	queryID := "XM13"
	if len(cfg.Queries) > 0 {
		queryID = cfg.Queries[0]
	}
	q, ok := xmlgen.QueryByID(queryID)
	if !ok {
		return nil, fmt.Errorf("unknown query %q", queryID)
	}
	dtdSource, gen, docSize := datasetFor(q, cfg)
	pf, err := smp.Compile(dtdSource, q.Paths, smp.Options{})
	if err != nil {
		return nil, err
	}
	doc := gen(xmlgen.Config{TargetSize: docSize, Seed: cfg.Seed + 1})

	var wantBuf bytes.Buffer
	if _, err := pf.Project(ctx, &wantBuf, bytes.NewReader(doc)); err != nil {
		return nil, fmt.Errorf("%s: serial projection: %w", q.ID, err)
	}
	want := wantBuf.Bytes()

	const rounds = 3
	t := stats.NewTable(
		fmt.Sprintf("Intra-document parallel projection, one %s document, query %s", stats.FormatBytes(docSize), q.ID),
		"Workers", "Wall Time", "MiB/s", "Output %", "Speedup")
	var serialElapsed int64
	for _, w := range workerLadder(workers) {
		var best int64
		var outBytes int64
		for i := 0; i < rounds; i++ {
			timer := stats.StartTimer()
			var outBuf bytes.Buffer
			var runStats smp.Stats
			_, err = pf.Project(ctx, &outBuf, bytes.NewReader(doc), smp.WithWorkers(w), smp.WithStatsInto(&runStats))
			out := outBuf.Bytes()
			elapsed := int64(timer.Elapsed())
			if err != nil {
				return nil, fmt.Errorf("%s: %d workers: %w", q.ID, w, err)
			}
			if !bytes.Equal(out, want) {
				return nil, fmt.Errorf("%s: %d workers: output differs from serial projection (%d vs %d bytes)",
					q.ID, w, len(out), len(want))
			}
			if i == 0 || elapsed < best {
				best = elapsed
			}
			outBytes = runStats.BytesWritten
		}
		if w == 1 {
			serialElapsed = best
		}
		blog.add("intra", 1, w, float64(len(doc))/(1<<20)/time.Duration(best).Seconds())
		t.AddRow(
			strconv.Itoa(w),
			stats.FormatDuration(time.Duration(best)),
			stats.FormatFloat(float64(len(doc))/(1<<20)/time.Duration(best).Seconds()),
			stats.FormatPercent(100*float64(outBytes)/float64(len(doc))),
			stats.FormatRatio(float64(serialElapsed), float64(best)),
		)
	}
	t.AddNote("%s", "parallel output verified byte-identical to the serial engine; speedup needs real cores — on a single-CPU container the pipeline is expected to run flat at best")
	return t, nil
}

// runMultiQuery is the -multi mode: it generates one document, prefilters it
// once per query with standalone engines (K independent passes) and once for
// all K queries together in a single shared scan (smp.MultiPrefilter),
// verifies every per-query output is byte-identical, and reports both wall
// times and the speedup. The win is algorithmic — one document scan instead
// of K — so it shows on a single core.
func runMultiQuery(ctx context.Context, k int, cfg experiments.Config, blog *benchLog) (*stats.Table, error) {
	qs, queryIDs, doc, mpf, err := multiWorkload(k, cfg)
	if err != nil {
		return nil, err
	}

	const rounds = 3
	t := stats.NewTable(
		fmt.Sprintf("Multi-query shared projection, one %s document, %d queries (%s)",
			stats.FormatBytes(int64(len(doc))), len(qs), strings.Join(queryIDs, ",")),
		"Mode", "Wall Time", "MiB/s", "Output %", "Speedup")

	// Baseline: K independent standalone passes over the same document.
	want := make([][]byte, len(qs))
	var independent int64
	for round := 0; round < rounds; round++ {
		timer := stats.StartTimer()
		for i := 0; i < mpf.Len(); i++ {
			var out bytes.Buffer
			if _, err := mpf.Query(i).Project(ctx, &out, bytes.NewReader(doc)); err != nil {
				return nil, fmt.Errorf("%s: independent pass: %w", qs[i].ID, err)
			}
			want[i] = out.Bytes()
		}
		if elapsed := int64(timer.Elapsed()); round == 0 || elapsed < independent {
			independent = elapsed
		}
	}

	// Shared: one scan serving every query.
	var shared int64
	var aggOut int64
	outs := make([]bytes.Buffer, mpf.Len())
	for round := 0; round < rounds; round++ {
		dsts := make([]io.Writer, mpf.Len())
		for i := range outs {
			outs[i].Reset()
			dsts[i] = &outs[i]
		}
		var agg smp.Stats
		timer := stats.StartTimer()
		if _, err := mpf.MultiProject(ctx, dsts, bytes.NewReader(doc), smp.WithStatsInto(&agg)); err != nil {
			return nil, fmt.Errorf("shared pass: %w", err)
		}
		if elapsed := int64(timer.Elapsed()); round == 0 || elapsed < shared {
			shared = elapsed
		}
		aggOut = agg.BytesWritten
	}
	for i := range outs {
		if !bytes.Equal(outs[i].Bytes(), want[i]) {
			return nil, fmt.Errorf("%s: shared output differs from the independent pass (%d vs %d bytes)",
				qs[i].ID, outs[i].Len(), len(want[i]))
		}
	}

	var wantTotal int64
	for _, w := range want {
		wantTotal += int64(len(w))
	}
	inputMiB := float64(len(doc)) / (1 << 20)
	blog.add("multi", mpf.Len(), 1, inputMiB*float64(mpf.Len())/time.Duration(shared).Seconds())
	t.AddRow(
		fmt.Sprintf("%d independent passes", mpf.Len()),
		stats.FormatDuration(time.Duration(independent)),
		stats.FormatFloat(inputMiB*float64(mpf.Len())/time.Duration(independent).Seconds()),
		stats.FormatPercent(100*float64(wantTotal)/float64(len(doc)*mpf.Len())),
		stats.FormatRatio(1, 1),
	)
	t.AddRow(
		"1 shared scan",
		stats.FormatDuration(time.Duration(shared)),
		stats.FormatFloat(inputMiB*float64(mpf.Len())/time.Duration(shared).Seconds()),
		stats.FormatPercent(100*float64(aggOut)/float64(len(doc)*mpf.Len())),
		stats.FormatRatio(float64(independent), float64(shared)),
	)
	t.AddNote("every per-query output verified byte-identical to its independent pass; MiB/s counts the document once per query served (one scan amortizes across %d queries)", mpf.Len())
	return t, nil
}

// multiWorkload resolves the workload shared by the multi-query modes
// (-multi alone and the -multi/-intra grid): the first K benchmark queries
// of one dataset (or cfg.Queries verbatim), one generated document, and the
// compiled MultiPrefilter.
func multiWorkload(k int, cfg experiments.Config) ([]xmlgen.Query, []string, []byte, *smp.MultiPrefilter, error) {
	queryIDs := cfg.Queries
	if len(queryIDs) == 0 {
		all := xmlgen.XMarkQueries()
		if k > len(all) {
			k = len(all)
		}
		for _, q := range all[:k] {
			queryIDs = append(queryIDs, q.ID)
		}
	}
	qs := make([]xmlgen.Query, len(queryIDs))
	for i, id := range queryIDs {
		q, ok := xmlgen.QueryByID(id)
		if !ok {
			return nil, nil, nil, nil, fmt.Errorf("unknown query %q", id)
		}
		qs[i] = q
	}
	dtdSource, gen, docSize := datasetFor(qs[0], cfg)
	for _, q := range qs[1:] {
		if d, _, _ := datasetFor(q, cfg); d != dtdSource {
			return nil, nil, nil, nil, fmt.Errorf("multi-query mode needs queries from one dataset (got %s and %s)", qs[0].ID, q.ID)
		}
	}
	doc := gen(xmlgen.Config{TargetSize: docSize, Seed: cfg.Seed + 1})

	specs := make([]string, len(qs))
	for i, q := range qs {
		specs[i] = q.Paths
	}
	mpf, err := smp.CompileMulti(dtdSource, specs, smp.Options{})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return qs, queryIDs, doc, mpf, nil
}

// runGrid is the combined -multi K -intra W mode: one shared scan serves K
// queries while the candidate scan itself fans out across 1..W segment
// workers — the full unified K×W pipeline. Every cell is verified
// byte-identical to K independent serial passes before its timing counts.
func runGrid(ctx context.Context, k, workers int, cfg experiments.Config, blog *benchLog) (*stats.Table, error) {
	qs, queryIDs, doc, mpf, err := multiWorkload(k, cfg)
	if err != nil {
		return nil, err
	}

	// Reference: K independent serial passes with standalone engines.
	want := make([][]byte, mpf.Len())
	for i := range want {
		var out bytes.Buffer
		if _, err := mpf.Query(i).Project(ctx, &out, bytes.NewReader(doc)); err != nil {
			return nil, fmt.Errorf("%s: independent pass: %w", qs[i].ID, err)
		}
		want[i] = out.Bytes()
	}

	const rounds = 3
	t := stats.NewTable(
		fmt.Sprintf("Unified K×W pipeline, one %s document, %d queries (%s)",
			stats.FormatBytes(int64(len(doc))), len(qs), strings.Join(queryIDs, ",")),
		"Scan Workers", "Wall Time", "MiB/s", "Speedup")
	outs := make([]bytes.Buffer, mpf.Len())
	dsts := make([]io.Writer, mpf.Len())
	var base int64
	for _, w := range workerLadder(workers) {
		var best int64
		for round := 0; round < rounds; round++ {
			for i := range outs {
				outs[i].Reset()
				dsts[i] = &outs[i]
			}
			timer := stats.StartTimer()
			if _, err := mpf.MultiProject(ctx, dsts, bytes.NewReader(doc), smp.WithWorkers(w)); err != nil {
				return nil, fmt.Errorf("%d workers: %w", w, err)
			}
			elapsed := int64(timer.Elapsed())
			for i := range outs {
				if !bytes.Equal(outs[i].Bytes(), want[i]) {
					return nil, fmt.Errorf("%s: %d workers: output differs from the independent serial pass (%d vs %d bytes)",
						qs[i].ID, w, outs[i].Len(), len(want[i]))
				}
			}
			if round == 0 || elapsed < best {
				best = elapsed
			}
		}
		if w == 1 {
			base = best
		}
		mbps := float64(len(doc)) / (1 << 20) * float64(mpf.Len()) / time.Duration(best).Seconds()
		blog.add("grid", mpf.Len(), w, mbps)
		t.AddRow(
			strconv.Itoa(w),
			stats.FormatDuration(time.Duration(best)),
			stats.FormatFloat(mbps),
			stats.FormatRatio(float64(base), float64(best)),
		)
	}
	t.AddNote("every cell verified byte-identical to %d independent serial passes before timing; MiB/s counts the document once per query served; scan-worker speedup needs real cores", mpf.Len())
	return t, nil
}

// workerLadder returns 1, 2, 4, ... up to and including max.
func workerLadder(max int) []int {
	ladder := []int{1}
	for w := 2; w < max; w *= 2 {
		ladder = append(ladder, w)
	}
	if max > 1 {
		ladder = append(ladder, max)
	}
	return ladder
}

// runColdStart is the -coldstart mode: for each query it times the static
// analysis (DTD parse, table compilation, plan construction with all matcher
// tables), the first projection after compiling and the steady-state
// projection, separating the paper's static phase from its runtime phase.
// With the Plan layer the first run pays no lazy table construction, so the
// First/Steady ratio should sit near 1.
func runColdStart(ctx context.Context, cfg experiments.Config) (*stats.Table, error) {
	queryIDs := cfg.Queries
	if len(queryIDs) == 0 {
		queryIDs = []string{"XM1", "XM13", "M4"}
	}

	t := stats.NewTable("Cold start — static analysis vs. first vs. steady-state run",
		"Query", "Compile", "Plan Bytes", "Matchers", "First Run", "Steady Run", "First/Steady")
	for _, id := range queryIDs {
		q, ok := xmlgen.QueryByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown query %q", id)
		}
		dtdSource, gen, docSize := datasetFor(q, cfg)
		doc := gen(xmlgen.Config{TargetSize: docSize, Seed: cfg.Seed + 1})

		compileTimer := stats.StartTimer()
		pf, err := smp.Compile(dtdSource, q.Paths, smp.Options{})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.ID, err)
		}
		compileElapsed := compileTimer.Elapsed()

		firstTimer := stats.StartTimer()
		if _, err := pf.Project(ctx, io.Discard, bytes.NewReader(doc)); err != nil {
			return nil, fmt.Errorf("%s: %w", q.ID, err)
		}
		first := firstTimer.Elapsed()

		// Steady state: the fastest of a few warmed runs.
		steady := first
		for i := 0; i < 5; i++ {
			runTimer := stats.StartTimer()
			if _, err := pf.Project(ctx, io.Discard, bytes.NewReader(doc)); err != nil {
				return nil, fmt.Errorf("%s: %w", q.ID, err)
			}
			if elapsed := runTimer.Elapsed(); elapsed < steady {
				steady = elapsed
			}
		}

		ps := pf.PlanStats()
		t.AddRow(
			q.ID,
			stats.FormatDuration(compileElapsed),
			stats.FormatBytes(ps.MemBytes),
			strconv.Itoa(ps.SingleMatchers+ps.MultiMatchers),
			stats.FormatDuration(first),
			stats.FormatDuration(steady),
			stats.FormatRatio(float64(first), float64(steady)),
		)
	}
	t.AddNote("%s", "compile covers the full static analysis including plan construction (matcher tables, tag interning, vocabulary orders); the first run builds nothing lazily, so First/Steady ≈ 1 up to cache warmth")
	return t, nil
}

// datasetFor resolves a benchmark query to its dataset: DTD source,
// document generator and configured document size (with the 4 MiB default).
// MEDLINE query IDs carry the "M" prefix; everything else is XMark.
func datasetFor(q xmlgen.Query, cfg experiments.Config) (dtdSource string, gen func(xmlgen.Config) []byte, docSize int64) {
	dtdSource, gen, docSize = xmlgen.XMarkDTD(), xmlgen.XMarkBytes, cfg.XMarkSize
	if strings.HasPrefix(q.ID, "M") {
		dtdSource, gen, docSize = xmlgen.MedlineDTD(), xmlgen.MedlineBytes, cfg.MedlineSize
	}
	if docSize <= 0 {
		docSize = 4 << 20
	}
	return dtdSource, gen, docSize
}

// parseSize parses sizes like "64MiB", "500KB", "2GiB" or plain byte counts.
func parseSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	units := []struct {
		suffix string
		factor int64
	}{
		{"GiB", 1 << 30}, {"GB", 1 << 30}, {"G", 1 << 30},
		{"MiB", 1 << 20}, {"MB", 1 << 20}, {"M", 1 << 20},
		{"KiB", 1 << 10}, {"KB", 1 << 10}, {"K", 1 << 10},
		{"B", 1},
	}
	for _, u := range units {
		if strings.HasSuffix(s, u.suffix) {
			v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimSuffix(s, u.suffix)), 64)
			if err != nil {
				return 0, fmt.Errorf("invalid size %q", s)
			}
			return int64(v * float64(u.factor)), nil
		}
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid size %q", s)
	}
	return v, nil
}
