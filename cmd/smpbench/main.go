// Command smpbench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation section on the bundled synthetic
// datasets.
//
// Examples:
//
//	smpbench -experiment all
//	smpbench -experiment table1 -xmark 64MiB
//	smpbench -experiment fig7b -medline 32MiB -format markdown
//	smpbench -experiment table2 -queries M1,M5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"smp/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "smpbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("smpbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		experiment = fs.String("experiment", "all",
			fmt.Sprintf("experiment to run: one of %v or all", experiments.Names()))
		xmarkSize   = fs.String("xmark", "8MiB", "XMark-like document size")
		medlineSize = fs.String("medline", "8MiB", "MEDLINE-like document size")
		sweep       = fs.String("sweep", "", "comma-separated document sizes for the fig7a sweep (e.g. 1MiB,4MiB,16MiB)")
		budget      = fs.String("budget", "", "memory budget of the in-memory engine for fig7a (e.g. 16MiB)")
		seed        = fs.Uint64("seed", 0, "dataset generator seed")
		queries     = fs.String("queries", "", "comma-separated query IDs to restrict the workload (e.g. XM1,XM13,M5)")
		format      = fs.String("format", "text", "output format: text, markdown or csv")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.Config{Seed: *seed}
	var err error
	if cfg.XMarkSize, err = parseSize(*xmarkSize); err != nil {
		return err
	}
	if cfg.MedlineSize, err = parseSize(*medlineSize); err != nil {
		return err
	}
	if *budget != "" {
		if cfg.MemoryBudget, err = parseSize(*budget); err != nil {
			return err
		}
	}
	if *sweep != "" {
		for _, s := range strings.Split(*sweep, ",") {
			v, err := parseSize(s)
			if err != nil {
				return err
			}
			cfg.SweepSizes = append(cfg.SweepSizes, v)
		}
	}
	if *queries != "" {
		cfg.Queries = strings.Split(*queries, ",")
	}

	tables, err := experiments.Run(*experiment, cfg)
	if err != nil {
		return err
	}
	for i, t := range tables {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		switch *format {
		case "markdown":
			fmt.Fprint(stdout, t.Markdown())
		case "csv":
			fmt.Fprintf(stdout, "# %s\n%s", t.Title, t.CSV())
		case "text":
			fmt.Fprint(stdout, t.String())
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
	}
	return nil
}

// parseSize parses sizes like "64MiB", "500KB", "2GiB" or plain byte counts.
func parseSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	units := []struct {
		suffix string
		factor int64
	}{
		{"GiB", 1 << 30}, {"GB", 1 << 30}, {"G", 1 << 30},
		{"MiB", 1 << 20}, {"MB", 1 << 20}, {"M", 1 << 20},
		{"KiB", 1 << 10}, {"KB", 1 << 10}, {"K", 1 << 10},
		{"B", 1},
	}
	for _, u := range units {
		if strings.HasSuffix(s, u.suffix) {
			v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimSuffix(s, u.suffix)), 64)
			if err != nil {
				return 0, fmt.Errorf("invalid size %q", s)
			}
			return int64(v * float64(u.factor)), nil
		}
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid size %q", s)
	}
	return v, nil
}
