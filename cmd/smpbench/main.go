// Command smpbench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation section on the bundled synthetic
// datasets.
//
// Examples:
//
//	smpbench -experiment all
//	smpbench -experiment table1 -xmark 64MiB
//	smpbench -experiment fig7b -medline 32MiB -format markdown
//	smpbench -experiment table2 -queries M1,M5
//
// With -parallel N the harness instead exercises the corpus runner
// (internal/corpus): it generates -docs documents (-xmark bytes each, or
// -medline bytes for a MEDLINE query) and compares serial prefiltering
// against an N-worker pool sharing one goroutine-safe engine:
//
//	smpbench -parallel 4 -docs 16 -xmark 4MiB -queries XM13
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"smp/internal/compile"
	"smp/internal/core"
	"smp/internal/corpus"
	"smp/internal/dtd"
	"smp/internal/experiments"
	"smp/internal/paths"
	"smp/internal/stats"
	"smp/internal/xmlgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "smpbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("smpbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		experiment = fs.String("experiment", "all",
			fmt.Sprintf("experiment to run: one of %v or all", experiments.Names()))
		xmarkSize   = fs.String("xmark", "8MiB", "XMark-like document size")
		medlineSize = fs.String("medline", "8MiB", "MEDLINE-like document size")
		sweep       = fs.String("sweep", "", "comma-separated document sizes for the fig7a sweep (e.g. 1MiB,4MiB,16MiB)")
		budget      = fs.String("budget", "", "memory budget of the in-memory engine for fig7a (e.g. 16MiB)")
		seed        = fs.Uint64("seed", 0, "dataset generator seed")
		queries     = fs.String("queries", "", "comma-separated query IDs to restrict the workload (e.g. XM1,XM13,M5)")
		format      = fs.String("format", "text", "output format: text, markdown or csv")
		parallel    = fs.Int("parallel", 0, "corpus mode: shard a batch of documents across N workers (0 = run the paper experiments)")
		docs        = fs.Int("docs", 16, "corpus mode: number of generated documents in the batch")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.Config{Seed: *seed}
	var err error
	if cfg.XMarkSize, err = parseSize(*xmarkSize); err != nil {
		return err
	}
	if cfg.MedlineSize, err = parseSize(*medlineSize); err != nil {
		return err
	}
	if *budget != "" {
		if cfg.MemoryBudget, err = parseSize(*budget); err != nil {
			return err
		}
	}
	if *sweep != "" {
		for _, s := range strings.Split(*sweep, ",") {
			v, err := parseSize(s)
			if err != nil {
				return err
			}
			cfg.SweepSizes = append(cfg.SweepSizes, v)
		}
	}
	if *queries != "" {
		cfg.Queries = strings.Split(*queries, ",")
	}

	var tables []*stats.Table
	if *parallel > 0 {
		t, err := runCorpus(*parallel, *docs, cfg)
		if err != nil {
			return err
		}
		tables = []*stats.Table{t}
	} else {
		var err error
		tables, err = experiments.Run(*experiment, cfg)
		if err != nil {
			return err
		}
	}
	for i, t := range tables {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		switch *format {
		case "markdown":
			fmt.Fprint(stdout, t.Markdown())
		case "csv":
			fmt.Fprintf(stdout, "# %s\n%s", t.Title, t.CSV())
		case "text":
			fmt.Fprint(stdout, t.String())
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
	}
	return nil
}

// runCorpus is the -parallel mode: it generates a batch of XMark-like
// documents, prefilters the batch serially and with a worker pool, and
// reports the aggregate throughput of both plus the speedup.
func runCorpus(workers, docCount int, cfg experiments.Config) (*stats.Table, error) {
	queryID := "XM13"
	if len(cfg.Queries) > 0 {
		queryID = cfg.Queries[0]
	}
	q, ok := xmlgen.QueryByID(queryID)
	if !ok {
		return nil, fmt.Errorf("unknown query %q", queryID)
	}
	dtdSource := xmlgen.XMarkDTD()
	gen := xmlgen.XMarkBytes
	docSize := cfg.XMarkSize
	if strings.HasPrefix(q.ID, "M") {
		dtdSource = xmlgen.MedlineDTD()
		gen = xmlgen.MedlineBytes
		docSize = cfg.MedlineSize
	}
	schema, err := dtd.Parse(dtdSource)
	if err != nil {
		return nil, err
	}
	table, err := compile.Compile(schema, paths.MustParseSet(q.Paths), compile.Options{})
	if err != nil {
		return nil, err
	}
	engine := core.New(table, core.Options{})

	if docSize <= 0 {
		docSize = 4 << 20
	}
	jobs := make([]corpus.Job, docCount)
	for i := range jobs {
		jobs[i] = corpus.FromBytes(fmt.Sprintf("doc%02d", i), gen(xmlgen.Config{TargetSize: docSize, Seed: cfg.Seed + uint64(i) + 1}))
	}

	t := stats.NewTable(fmt.Sprintf("Corpus prefiltering, %d x %s, query %s", docCount, stats.FormatBytes(docSize), q.ID),
		"Workers", "Wall Time", "Aggregate MiB/s", "Output %", "Failed", "Speedup")
	var serial corpus.Aggregate
	for _, w := range []int{1, workers} {
		runner := corpus.Runner{Engine: engine, Workers: w}
		results, agg := runner.Run(context.Background(), jobs)
		for _, res := range results {
			if res.Err != nil {
				return nil, fmt.Errorf("document %s: %v", res.Name, res.Err)
			}
		}
		if w == 1 {
			serial = agg
		}
		t.AddRow(
			strconv.Itoa(w),
			stats.FormatDuration(agg.Elapsed),
			stats.FormatFloat(agg.ThroughputMBps()),
			stats.FormatPercent(100*agg.OutputRatio()),
			strconv.Itoa(agg.Failed),
			stats.FormatRatio(float64(serial.Elapsed), float64(agg.Elapsed)),
		)
		if w == workers && w == 1 {
			break // -parallel 1: the serial row is the whole story
		}
	}
	return t, nil
}

// parseSize parses sizes like "64MiB", "500KB", "2GiB" or plain byte counts.
func parseSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	units := []struct {
		suffix string
		factor int64
	}{
		{"GiB", 1 << 30}, {"GB", 1 << 30}, {"G", 1 << 30},
		{"MiB", 1 << 20}, {"MB", 1 << 20}, {"M", 1 << 20},
		{"KiB", 1 << 10}, {"KB", 1 << 10}, {"K", 1 << 10},
		{"B", 1},
	}
	for _, u := range units {
		if strings.HasSuffix(s, u.suffix) {
			v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimSuffix(s, u.suffix)), 64)
			if err != nil {
				return 0, fmt.Errorf("invalid size %q", s)
			}
			return int64(v * float64(u.factor)), nil
		}
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid size %q", s)
	}
	return v, nil
}
