package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"smp"
	"smp/internal/obs"
	"smp/internal/xmlgen"
)

// stubServe is a miniature in-process stand-in for smpserve: enough of
// /project and /documents for the -serve harness to run against, with real
// projections (so the harness's byte-identity gate actually bites) but no
// coalescing. The CI load-smoke job covers the real binary; these tests
// cover the harness mechanics — arrival loops, percentile math, trajectory
// records, equivalence plumbing.
type stubServe struct {
	mu   sync.Mutex
	docs map[string][]byte
	pfs  map[string]*smp.Prefilter

	reg *obs.Registry
	lat *obs.Histogram
}

func newStubServe() *stubServe {
	reg := obs.NewRegistry()
	return &stubServe{
		docs: make(map[string][]byte),
		pfs:  make(map[string]*smp.Prefilter),
		reg:  reg,
		lat: reg.Histogram("smpserve_http_request_seconds", "stub latency", obs.ExpBuckets(0.0005, 4, 8),
			obs.Label{Key: "endpoint", Value: "/project"}),
	}
}

func (s *stubServe) prefilter(spec string) (*smp.Prefilter, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if pf, ok := s.pfs[spec]; ok {
		return pf, nil
	}
	pf, err := smp.Compile(xmlgen.XMarkDTD(), spec, smp.Options{})
	if err != nil {
		return nil, err
	}
	s.pfs[spec] = pf
	return pf, nil
}

func (s *stubServe) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/documents" && r.Method == http.MethodPost:
		data, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		sum := sha256.Sum256(data)
		hash := hex.EncodeToString(sum[:])
		s.mu.Lock()
		s.docs[hash] = data
		s.mu.Unlock()
		w.Header().Set("ETag", `"sha256:`+hash+`"`)
		w.WriteHeader(http.StatusCreated)
	case r.URL.Path == "/healthz":
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"status":"ok","goversion":"go-stub","version":"(test)","revision":"none"}`)
	case r.URL.Path == "/metrics":
		s.reg.WritePrometheus(w)
	case r.URL.Path == "/project":
		start := time.Now()
		defer func() {
			s.reg.Commit(func() { s.lat.Observe(time.Since(start).Seconds()) })
		}()
		var doc []byte
		if ref := r.URL.Query().Get("doc"); ref != "" {
			hash := strings.TrimPrefix(ref, "sha256:")
			s.mu.Lock()
			doc = s.docs[hash]
			s.mu.Unlock()
			if doc == nil {
				http.Error(w, "document not cached", http.StatusNotFound)
				return
			}
		} else {
			var err error
			if doc, err = io.ReadAll(r.Body); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		}
		pf, err := s.prefilter(r.URL.Query().Get("paths"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if _, err := pf.Project(r.Context(), w, bytes.NewReader(doc)); err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		}
	default:
		http.NotFound(w, r)
	}
}

func TestRunServe(t *testing.T) {
	ts := httptest.NewServer(newStubServe())
	defer ts.Close()

	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "serve.json")
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{
		"-serve", ts.URL,
		"-conns", "4",
		"-duration", "300ms",
		"-dup", "0.5",
		"-xmark", "64KiB",
		"-json", jsonPath,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run -serve: %v\nstderr: %s", err, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"Serve-mode load", "coalesced", "uncoalesced", "p95", "byte-identical", "server-side /metrics histogram"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// The trajectory point carries one record per phase with latency fields.
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var trajectory []benchPoint
	if err := json.Unmarshal(data, &trajectory); err != nil {
		t.Fatalf("trajectory does not parse: %v", err)
	}
	if len(trajectory) != 1 {
		t.Fatalf("trajectory has %d points, want 1", len(trajectory))
	}
	records := trajectory[0].Records
	if len(records) != 3 {
		t.Fatalf("point has %d records, want 3 (coalesce, nocoalesce, server-side scrape)", len(records))
	}
	inputs := map[string]bool{}
	for _, r := range records {
		inputs[r.Input] = true
		if r.Mode == "serve-server" {
			// The end-of-run scrape: server-side percentiles from /metrics.
			if r.P50Ms <= 0 || r.P50Ms > r.P95Ms || r.P95Ms > r.P99Ms {
				t.Errorf("scrape record %+v: percentiles missing or out of order", r)
			}
			continue
		}
		if r.Mode != "serve" || r.K != 4 {
			t.Errorf("record %+v: want mode=serve k=4", r)
		}
		if r.QPS <= 0 || r.P50Ms <= 0 || r.P95Ms <= 0 || r.P99Ms <= 0 {
			t.Errorf("record %+v: latency fields must be positive", r)
		}
		if r.P50Ms > r.P95Ms || r.P95Ms > r.P99Ms {
			t.Errorf("record %+v: percentiles out of order", r)
		}
	}
	for _, want := range []string{"coalesce", "nocoalesce", "metrics"} {
		if !inputs[want] {
			t.Errorf("records cover inputs %v, want %s among them", inputs, want)
		}
	}
}

func TestRunServeOpenLoop(t *testing.T) {
	ts := httptest.NewServer(newStubServe())
	defer ts.Close()

	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{
		"-serve", ts.URL,
		"-conns", "2",
		"-duration", "300ms",
		"-rate", "50",
		"-xmark", "32KiB",
		"-body", // exercise the per-request upload path too
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run -serve (open loop): %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "open @ 50 req/s") {
		t.Errorf("output does not report the open-loop arrival:\n%s", stdout.String())
	}
}

// TestRunServeEquivalenceGate corrupts one response and checks that the
// harness fails loudly — the property CI relies on.
func TestRunServeEquivalenceGate(t *testing.T) {
	stub := newStubServe()
	var n int64
	var mu sync.Mutex
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/project" && r.URL.Query().Get("coalesce") != "off" {
			mu.Lock()
			n++
			corrupt := n == 3
			mu.Unlock()
			if corrupt {
				// A "coalesced" response that diverges from the reference.
				w.Write([]byte("<corrupted/>"))
				return
			}
		}
		stub.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(handler)
	defer ts.Close()

	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{
		"-serve", ts.URL,
		"-conns", "2",
		"-duration", "400ms",
		"-xmark", "32KiB",
	}, &stdout, &stderr)
	if err == nil {
		t.Fatal("harness accepted a corrupted coalesced response")
	}
	if !strings.Contains(err.Error(), "equivalence violation") {
		t.Errorf("error %q does not name the equivalence violation", err)
	}
}

func TestRunServeBadURL(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{
		"-serve", "http://127.0.0.1:1", // nothing listens on port 1
		"-conns", "1",
		"-duration", "100ms",
		"-xmark", "32KiB",
	}, &stdout, &stderr)
	if err == nil {
		t.Fatal("run -serve against a dead server succeeded")
	}
	if !strings.Contains(err.Error(), "reference") && !strings.Contains(err.Error(), "refused") {
		t.Logf("error (acceptable, as long as it fails): %v", err)
	}
}
