package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"smp"
)

// TestCacheKeyNormalization posts the same path set twice in different
// order (and with a duplicate), plus the equivalent query expression, and
// checks that all of them share one compiled cache entry.
func TestCacheKeyNormalization(t *testing.T) {
	srv, ts := testServer(t, 8)
	specs := []string{
		"/*, //australia//description#",
		"//australia//description#, /*",
		"//australia//description#, /*, //australia//description#",
	}
	var first []byte
	for i, spec := range specs {
		resp := postProject(t, ts, "paths="+url.QueryEscape(spec), url.PathEscape(auctionDTD), auctionDoc)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("spec %d: status = %d, want 200", i, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = body
		} else if !bytes.Equal(body, first) {
			t.Errorf("spec %d: output differs from spec 0", i)
		}
	}
	_, size, _, hits, misses, _ := srv.cache.view()
	if size != 1 {
		t.Errorf("cache size = %d, want 1 shared entry for the permuted specs", size)
	}
	if misses != 1 || hits != int64(len(specs)-1) {
		t.Errorf("cache hits/misses = %d/%d, want %d/1", hits, misses, len(specs)-1)
	}
}

// readMultipart parses a /multiproject response into per-part bodies and
// headers, in order.
func readMultipart(t *testing.T, resp *http.Response) ([][]byte, []map[string]string) {
	t.Helper()
	mediaType, params, err := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if err != nil || mediaType != "multipart/mixed" {
		t.Fatalf("Content-Type = %q (err %v), want multipart/mixed", resp.Header.Get("Content-Type"), err)
	}
	mr := multipart.NewReader(resp.Body, params["boundary"])
	var bodies [][]byte
	var headers []map[string]string
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(part)
		if err != nil {
			t.Fatal(err)
		}
		h := make(map[string]string)
		for k := range part.Header {
			h[k] = part.Header.Get(k)
		}
		bodies = append(bodies, body)
		headers = append(headers, h)
	}
	return bodies, headers
}

// TestMultiProjectEndpoint posts one document for three queries and checks
// each part against the equivalent standalone /project response.
func TestMultiProjectEndpoint(t *testing.T) {
	srv, ts := testServer(t, 16)
	doc, err := smp.GenerateBytes(smp.XMark, 64<<10, 7)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := smp.BenchmarkQueries(smp.XMark)
	if err != nil {
		t.Fatal(err)
	}
	// Queries 0, 1 and 3: query 2 (XM3) shares XM2's path set and would be
	// deduplicated by the canonical cache key.
	specs := []string{queries[0].Paths, queries[1].Paths, queries[3].Paths}

	params := "dataset=xmark"
	for _, spec := range specs {
		params += "&paths=" + url.QueryEscape(spec)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/multiproject?"+params, bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, want 200 (%s)", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-SMP-Queries"); got != "3" {
		t.Errorf("X-SMP-Queries = %q, want 3", got)
	}
	bodies, headers := readMultipart(t, resp)
	if len(bodies) != len(specs) {
		t.Fatalf("%d parts, want %d", len(bodies), len(specs))
	}

	dtdSource, err := smp.DatasetDTD(smp.XMark)
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		pf, err := smp.Compile(dtdSource, spec, smp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		if _, err := pf.Project(context.Background(), &want, bytes.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), bodies[i]) {
			t.Errorf("part %d: %d bytes, standalone projection %d bytes", i, len(bodies[i]), want.Len())
		}
		if headers[i]["X-Smp-Error"] != "" {
			t.Errorf("part %d: unexpected error %q", i, headers[i]["X-Smp-Error"])
		}
		if headers[i]["X-Smp-Paths"] == "" || headers[i]["X-Smp-Bytes-Written"] == "" {
			t.Errorf("part %d: missing per-query headers: %v", i, headers[i])
		}
	}

	// The per-query plans went through the same LRU /project uses, plus one
	// merged entry: 3 single entries + 1 multi entry.
	entries, size, _, _, _, _ := srv.cache.view()
	if size != len(specs)+1 {
		t.Errorf("cache size = %d, want %d (per-query plans + merged entry)", size, len(specs)+1)
	}
	var multiEntry *cacheEntryInfo
	for i := range entries {
		if strings.HasPrefix(entries[i].Label, "multi ") {
			multiEntry = &entries[i]
		}
	}
	if multiEntry == nil {
		t.Fatalf("no merged cache entry in %+v", entries)
	}
	// Merge-aware accounting: the multi entry weighs only the union scan
	// tables, which are far smaller than the per-query plans it references.
	for _, e := range entries {
		if e.Label != multiEntry.Label && multiEntry.PlanBytes >= e.PlanBytes {
			t.Errorf("merged entry weighs %d, per-query entry %q weighs %d — merge-aware weight should be the smaller scan-only footprint",
				multiEntry.PlanBytes, e.Label, e.PlanBytes)
		}
	}

	// A repeated request hits both the per-query and the merged entries.
	req2, _ := http.NewRequest(http.MethodPost, ts.URL+"/multiproject?"+params, bytes.NewReader(doc))
	resp2, err := ts.Client().Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if _, size2, _, _, _, _ := srv.cache.view(); size2 != size {
		t.Errorf("cache grew from %d to %d on a repeated multiproject", size, size2)
	}

	// /stats reports the multi traffic.
	statsResp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.MultiRequests != 2 || st.MultiQueries != 6 {
		t.Errorf("multi requests/queries = %d/%d, want 2/6", st.MultiRequests, st.MultiQueries)
	}
}

// TestMultiProjectPerQueryError posts a document that conforms for one query
// but fails another: the failing part carries X-SMP-Error, the healthy part
// its projection.
func TestMultiProjectPerQueryError(t *testing.T) {
	_, ts := testServer(t, 8)
	// regions arrive out of order: valid prefix for some automata, a
	// transition error for ones that need the australia subtree in place.
	badDoc := `<site><regions><africa/><australia><item><location>x</location><name>n</name><payment>p</payment><description>d</description><shipping/><incategory category="1"/></item></australia><asia/></regions></site>`
	specs := []string{"/*, //australia//description#", "/*, //asia//item#"}
	params := ""
	for _, spec := range specs {
		params += "&paths=" + url.QueryEscape(spec)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/multiproject?"+params[1:], strings.NewReader(badDoc))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-SMP-DTD", url.PathEscape(auctionDTD))
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, want 200 with per-part errors (%s)", resp.StatusCode, body)
	}
	bodies, headers := readMultipart(t, resp)
	if len(bodies) != 2 {
		t.Fatalf("%d parts, want 2", len(bodies))
	}
	// Compare against standalone runs: same per-query success/failure split.
	dtdSource := auctionDTD
	for i, spec := range specs {
		pf, err := smp.Compile(dtdSource, spec, smp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		_, serr := pf.Project(context.Background(), &want, strings.NewReader(badDoc))
		gotErr := headers[i]["X-Smp-Error"]
		if (serr == nil) != (gotErr == "") {
			t.Errorf("part %d: standalone err = %v, part error = %q", i, serr, gotErr)
		}
		if serr == nil && !bytes.Equal(want.Bytes(), bodies[i]) {
			t.Errorf("part %d: output differs from standalone", i)
		}
		if serr != nil && gotErr != serr.Error() {
			t.Errorf("part %d: error %q, standalone %q", i, gotErr, serr)
		}
	}
}

// TestMultiProjectBadRequests covers the request-validation paths.
func TestMultiProjectBadRequests(t *testing.T) {
	_, ts := testServer(t, 4)
	cases := []struct {
		name   string
		params string
	}{
		{"no-queries", "dataset=xmark"},
		{"both-kinds", "dataset=xmark&paths=/*&query=" + url.QueryEscape("<q>{//site}</q>")},
		{"bad-path", "dataset=xmark&paths=" + url.QueryEscape("//[bad")},
		{"bad-dataset", "dataset=nope&paths=/*"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/multiproject?"+tc.params, strings.NewReader(auctionDoc))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := ts.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status = %d, want 400", resp.StatusCode)
			}
		})
	}
	// GET is rejected.
	resp, err := ts.Client().Get(ts.URL + "/multiproject?dataset=xmark&paths=/*")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", resp.StatusCode)
	}
}
