// Command smpserve exposes SMP prefiltering as an HTTP service: compile
// once, serve many. Each request names a DTD and a projection-path set (or a
// query to extract the paths from); the compiled prefilter is kept in an LRU
// cache keyed by the (DTD, paths) pair, and the document is streamed from
// the request body through the prefilter into the response.
//
// Endpoints:
//
//	POST /project?dataset=xmark&paths=/*,//item/name%23
//	POST /project?dataset=medline&query=<q>{//MedlineCitation/Article}</q>
//	POST /project?paths=...        (DTD source in the X-SMP-DTD header)
//	POST /multiproject?dataset=xmark&paths=...&paths=...   (one scan, N queries)
//	GET  /healthz
//	GET  /stats
//
// Cache keys are canonical: a path set is parsed, deduplicated and sorted
// before it is looked up, so requests naming the same projection paths in a
// different order — or extracting them from an equivalent query expression —
// share one compiled plan. /multiproject accepts one repeated paths= (or
// query=) parameter per query, projects the body for all of them in a single
// document scan (see smp.MultiPrefilter), and answers multipart/mixed with
// one part per query in parameter order; per-query counters and errors ride
// in the part headers. Its per-query plans go through the same LRU as
// /project entries, and the merged entry is weighed merge-aware (only the
// union scan tables it adds).
//
// The document is the POST body; the projection is the response body. The
// per-run counters are reported in X-SMP-* response trailers, service-level
// counters (requests, cache hits, bytes in/out, per-entry plan footprints,
// intra-document parallel runs, cancelled projections) at /stats. Every
// projection runs under the request's context: when a client disconnects
// mid-stream the in-flight projection is aborted at its next chunk boundary
// and counted in /stats as "cancelled". Request bodies that declare a
// Content-Length of at least -intramin bytes are projected with
// intra-document parallelism (-intra scan workers splitting the single
// stream, see internal/pipeline); smaller or chunked bodies use the serial
// engine. The same policy applies to /multiproject — a large body is served
// by the unified K×W pipeline, K queries over W parallel segment scanners,
// counted in /stats as "multi_intra_requests".
// The prefilter cache can be bounded both by entry count (-cache)
// and by the total memory of the compiled plans (-cachebytes); SIGINT or
// SIGTERM triggers a graceful shutdown that drains in-flight projections
// (-drain).
//
// Example:
//
//	smpserve -addr :8080 -cache 64 &
//	smpgen -dataset xmark -size 8MiB | curl -sg --data-binary @- \
//	    'localhost:8080/project?dataset=xmark&query=<q>{//australia//description}</q>'
//
// (curl's -g disables URL globbing, which would otherwise strip the braces
// from the query expression.)
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"mime/multipart"
	"net"
	"net/http"
	"net/textproto"
	"net/url"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"smp"
	"smp/internal/paths"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		cache      = flag.Int("cache", 64, "maximum number of compiled prefilters kept in the LRU cache")
		cacheBytes = flag.Int64("cachebytes", 0, "byte budget for the cached compiled plans (0 = unlimited; entries are weighed by plan footprint)")
		chunk      = flag.Int("chunk", 0, "streaming window chunk size in bytes (0 = default 32 KiB)")
		drain      = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout for in-flight requests")
		intra      = flag.Int("intra", runtime.GOMAXPROCS(0), "intra-document scan workers for large request bodies (<=1 = always serial)")
		intraMin   = flag.Int64("intramin", 4<<20, "request body size in bytes from which intra-document parallelism kicks in (requires a Content-Length)")
		docroot    = flag.String("docroot", "", "directory of server-local documents: /project?doc=<name> projects the named file (memory-mapped when possible) instead of the request body")
	)
	flag.Parse()

	srv := newServer(*cache, *cacheBytes, smp.Options{ChunkSize: *chunk})
	srv.intraWorkers = *intra
	srv.intraMin = *intraMin
	srv.docroot = *docroot
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smpserve:", err)
		os.Exit(1)
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	log.Printf("smpserve: listening on %s (prefilter cache capacity %d, byte budget %d)", ln.Addr(), *cache, *cacheBytes)
	if err := serveUntilSignal(&http.Server{Handler: srv.routes()}, ln, stop, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "smpserve:", err)
		os.Exit(1)
	}
	log.Printf("smpserve: shut down cleanly")
}

// serveUntilSignal serves HTTP on ln until a signal arrives on stop, then
// shuts down gracefully: the listener closes immediately, in-flight requests
// get up to timeout to finish, and only then are connections cut. It returns
// nil on a clean shutdown.
func serveUntilSignal(hs *http.Server, ln net.Listener, stop <-chan os.Signal, timeout time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err // the listener failed before any signal arrived
	case sig := <-stop:
		log.Printf("smpserve: received %v, draining in-flight requests (up to %s)", sig, timeout)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		hs.Close()
		return fmt.Errorf("graceful shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// server holds the shared state of the service: the prefilter cache, the
// compile options, the intra-document parallelism policy and the
// service-level counters.
type server struct {
	cache *prefilterCache
	opts  smp.Options
	start time.Time

	// intraWorkers and intraMin select intra-document parallel projection
	// (Project with WithWorkers) for request bodies whose Content-Length
	// is at least intraMin bytes; smaller or chunked bodies stay serial.
	intraWorkers int
	intraMin     int64

	// docroot, when non-empty, lets /project?doc=<name> read the named
	// server-local file instead of the request body. Files take the
	// zero-copy mmap path (internal/mmapio) when the platform supports it;
	// hot documents are then served straight out of the page cache with no
	// upload and no read copies.
	docroot string

	requests           atomic.Int64
	failures           atomic.Int64
	intraRequests      atomic.Int64
	multiRequests      atomic.Int64
	multiIntraRequests atomic.Int64
	multiQueries       atomic.Int64
	cancelled          atomic.Int64
	bytesRead          atomic.Int64
	bytesWritten       atomic.Int64
	zeroCopyRuns       atomic.Int64
}

func newServer(cacheSize int, cacheBytes int64, opts smp.Options) *server {
	return &server{cache: newPrefilterCache(cacheSize, cacheBytes), opts: opts, start: time.Now()}
}

// routes wires up the endpoints.
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/project", s.handleProject)
	mux.HandleFunc("/multiproject", s.handleMultiProject)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// handleProject streams the request body — or, with doc=<name> against a
// configured -docroot, a server-local file — through the prefilter selected
// by the query parameters and writes the projection as the response body.
// Server-local files are memory-mapped when possible, so repeated
// projections of a hot document run zero-copy out of the page cache.
func (s *server) handleProject(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	doc := r.URL.Query().Get("doc")
	// A doc= request carries no body, so GET is as natural as POST there.
	if r.Method != http.MethodPost && !(r.Method == http.MethodGet && doc != "") {
		s.fail(w, http.StatusMethodNotAllowed, "POST the document to /project")
		return
	}
	pf, err := s.prefilterFor(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err.Error())
		return
	}

	src := io.Reader(r.Body)
	srcSize := r.ContentLength
	if doc != "" {
		if s.docroot == "" {
			s.fail(w, http.StatusBadRequest, "doc= requires the server to run with -docroot")
			return
		}
		f, err := s.openDoc(doc)
		if err != nil {
			s.fail(w, http.StatusNotFound, "document not found")
			return
		}
		defer f.Close()
		if fi, err := f.Stat(); err == nil {
			srcSize = fi.Size()
		}
		src = f
	}

	w.Header().Set("Content-Type", "application/xml")
	// The counters are only known after the body has streamed, so they are
	// sent as HTTP trailers (declared before the first body write).
	w.Header().Set("Trailer", "X-SMP-Bytes-Read, X-SMP-Bytes-Written, X-SMP-Char-Comparisons, X-SMP-Tags-Matched")
	// Count an intra-document run only if the body is also large enough for
	// the split pipeline itself — below pf.MinParallelInput, WithWorkers
	// silently falls back to the serial engine and /stats must not claim a
	// parallel run.
	var opts []smp.ProjectOption
	if s.intraWorkers > 1 && srcSize >= s.intraMin &&
		srcSize >= int64(pf.MinParallelInput(s.intraWorkers)) {
		opts = append(opts, smp.WithWorkers(s.intraWorkers))
		s.intraRequests.Add(1)
	}
	out := &countingWriter{w: w}
	// The request context makes the projection cancellable end to end: a
	// client that disconnects mid-stream aborts the in-flight run at its
	// next chunk boundary instead of burning a core on a dead connection.
	stats, err := pf.Project(r.Context(), out, src, opts...)
	s.bytesRead.Add(stats.BytesRead)
	s.bytesWritten.Add(stats.BytesWritten)
	if stats.ZeroCopyInput {
		s.zeroCopyRuns.Add(1)
	}
	if err != nil {
		s.failures.Add(1)
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || r.Context().Err() != nil {
			// Client went away (or the handler deadline fired): the abort is
			// accounted separately so /stats distinguishes dead-connection
			// cleanup from real projection failures.
			s.cancelled.Add(1)
		}
		if out.n == 0 {
			// Nothing streamed yet (e.g. a document that does not conform to
			// the DTD failed up front): a clean error response is possible.
			w.Header().Del("Trailer")
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.WriteHeader(http.StatusUnprocessableEntity)
			fmt.Fprintln(w, "smpserve:", err)
			return
		}
		// Headers are already sent once the projection started streaming, so
		// a mid-stream failure can only be logged and the connection cut.
		log.Printf("smpserve: projection failed after %d bytes: %v", out.n, err)
		panic(http.ErrAbortHandler)
	}
	setStatsHeaders(w.Header(), stats)
}

// openDoc resolves a doc= name inside the docroot. The name is cleaned as
// a rooted path first, so ".." segments cannot escape the root, and only
// regular files are served.
func (s *server) openDoc(name string) (*os.File, error) {
	path := filepath.Join(s.docroot, filepath.Clean("/"+name))
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil || !fi.Mode().IsRegular() {
		f.Close()
		return nil, fmt.Errorf("smpserve: %q is not a regular file", name)
	}
	return f, nil
}

// handleMultiProject projects one request body for K queries in a single
// scan (POST /multiproject?dataset=xmark&paths=...&paths=...). Each repeated
// paths (or query) parameter is one query; the response is multipart/mixed
// with one part per query, in parameter order. Part headers carry the
// query's canonical path set and its per-query counters; a query that failed
// carries an X-SMP-Error header and an empty body instead, without affecting
// its siblings. Per-query outputs are buffered in memory for the multipart
// framing, so this endpoint suits query fan-out on moderate documents; for
// huge single-query streams, /project streams unbuffered.
func (s *server) handleMultiProject(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST the document to /multiproject")
		return
	}
	multi, specs, err := s.multiPrefilterFor(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err.Error())
		return
	}
	s.multiRequests.Add(1)
	s.multiQueries.Add(int64(multi.Len()))

	bufs := make([]bytes.Buffer, multi.Len())
	dsts := make([]io.Writer, multi.Len())
	for i := range bufs {
		dsts[i] = &bufs[i]
	}
	// Same intra-document policy as /project: a body large enough for the
	// parallel segment scan is served by the unified K×W pipeline. Below
	// MinParallelInput, WithWorkers silently falls back to the serial shared
	// scan and /stats must not claim a parallel run.
	opts := []smp.ProjectOption{}
	if s.intraWorkers > 1 && r.ContentLength >= s.intraMin &&
		r.ContentLength >= int64(multi.MinParallelInput(s.intraWorkers)) {
		opts = append(opts, smp.WithWorkers(s.intraWorkers))
		s.multiIntraRequests.Add(1)
	}
	var agg smp.Stats
	qstats, runErr := multi.MultiProject(r.Context(), dsts, r.Body, append(opts, smp.WithStatsInto(&agg))...)
	s.bytesRead.Add(agg.BytesRead)
	s.bytesWritten.Add(agg.BytesWritten)
	var merr *smp.MultiError
	if runErr != nil {
		s.failures.Add(1)
		if r.Context().Err() != nil {
			// Client went away: nothing has been written yet (outputs are
			// buffered), so just account for the abort and drop the
			// connection.
			s.cancelled.Add(1)
			panic(http.ErrAbortHandler)
		}
		if !errors.As(runErr, &merr) {
			s.fail(w, http.StatusBadRequest, runErr.Error())
			return
		}
	}

	mw := multipart.NewWriter(w)
	w.Header().Set("Content-Type", "multipart/mixed; boundary="+mw.Boundary())
	w.Header().Set("X-SMP-Queries", strconv.Itoa(multi.Len()))
	setStatsHeaders(w.Header(), agg)
	for i := range bufs {
		h := make(textproto.MIMEHeader)
		h.Set("Content-Type", "application/xml")
		h.Set("X-SMP-Query", strconv.Itoa(i))
		h.Set("X-SMP-Paths", specs[i])
		h.Set("X-SMP-Bytes-Written", strconv.FormatInt(qstats[i].BytesWritten, 10))
		h.Set("X-SMP-Tags-Matched", strconv.FormatInt(qstats[i].TagsMatched, 10))
		if merr != nil && merr.Errs[i] != nil {
			h.Set("X-SMP-Error", merr.Errs[i].Error())
		}
		pw, err := mw.CreatePart(h)
		if err != nil {
			log.Printf("smpserve: multipart framing: %v", err)
			panic(http.ErrAbortHandler)
		}
		if merr == nil || merr.Errs[i] == nil {
			if _, err := pw.Write(bufs[i].Bytes()); err != nil {
				log.Printf("smpserve: writing query %d output: %v", i, err)
				panic(http.ErrAbortHandler)
			}
		}
	}
	if err := mw.Close(); err != nil {
		log.Printf("smpserve: closing multipart response: %v", err)
	}
}

// multiPrefilterFor resolves the request's DTD plus its repeated paths= (or
// query=) parameters to a merged multi-query prefilter. Each query is first
// resolved through the same LRU the /project endpoint uses — so a
// multi-query request warms (and reuses) exactly the per-query plans that
// standalone requests serve from — and the merged entry is then cached under
// the ordered per-query key list, weighed merge-aware: only the union scan
// tables it adds on top of the already-weighed per-query plans.
func (s *server) multiPrefilterFor(r *http.Request) (*smp.MultiPrefilter, []string, error) {
	dtdSource, err := requestDTD(r)
	if err != nil {
		return nil, nil, err
	}
	pathsList := r.URL.Query()["paths"]
	queryList := r.URL.Query()["query"]
	switch {
	case len(pathsList) == 0 && len(queryList) == 0:
		return nil, nil, fmt.Errorf("missing ?paths=... or ?query=... parameters (repeat one per query)")
	case len(pathsList) > 0 && len(queryList) > 0:
		return nil, nil, fmt.Errorf("give either ?paths= or ?query= parameters, not both")
	}
	raw, isQuery := pathsList, false
	if len(queryList) > 0 {
		raw, isQuery = queryList, true
	}
	dtdID := "dtd=inline"
	if dataset := r.URL.Query().Get("dataset"); dataset != "" {
		dtdID = "dataset=" + dataset
	}
	specs := make([]string, len(raw))
	for i, spec := range raw {
		canonical, err := canonicalSpecOne(spec, isQuery)
		if err != nil {
			return nil, nil, fmt.Errorf("query %d: %v", i, err)
		}
		specs[i] = canonical
	}
	// Canonicalization alone determines the merged key, so a warm multi
	// entry serves without touching (or recompiling) the per-query entries —
	// under capacity pressure the singles may have been evicted, and
	// resolving them first would rebuild them on every request just to
	// discard the result on this hit.
	multiKey := "\x00multi\x00" + dtdSource + "\x00" + strings.Join(specs, "\x00")
	if v, ok := s.cache.get(multiKey); ok {
		return v.(*smp.MultiPrefilter), specs, nil
	}
	pfs := make([]*smp.Prefilter, len(specs))
	for i, canonical := range specs {
		pf, err := s.cachedPrefilter(dtdSource, canonical, dtdID+" paths="+canonical)
		if err != nil {
			return nil, nil, fmt.Errorf("query %d: %v", i, err)
		}
		pfs[i] = pf
	}
	multi, err := smp.NewMultiPrefilter(pfs...)
	if err != nil {
		return nil, nil, err
	}
	// The merged entry weighs only the union scan tables: its per-query
	// plans are shared with (and weighed by) the single entries resolved
	// above. The known tradeoff: if capacity pressure later evicts a single
	// entry, the surviving multi entry still pins that plan, so totalBytes
	// undercounts until the multi entry is evicted too — size -cache at
	// least one above the largest expected query fan-out to keep the
	// accounting tight.
	label := fmt.Sprintf("multi %s queries=%d union=%d", dtdID, multi.Len(), multi.PlanStats().UnionKeywords)
	v := s.cache.put(multiKey, label, multi, multi.PlanStats().ScanBytes)
	return v.(*smp.MultiPrefilter), specs, nil
}

// canonicalSpecOne canonicalizes one multi-query parameter.
func canonicalSpecOne(spec string, isQuery bool) (string, error) {
	if isQuery {
		return canonicalSpec("", spec)
	}
	return canonicalSpec(spec, "")
}

// countingWriter tracks whether (and how much of) the response body has
// been written, which decides how a projection error can be reported.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// prefilterFor resolves the request's (DTD, paths) pair to a compiled
// prefilter, consulting the LRU cache first.
func (s *server) prefilterFor(r *http.Request) (*smp.Prefilter, error) {
	dtdSource, err := requestDTD(r)
	if err != nil {
		return nil, err
	}
	pathSpec := r.URL.Query().Get("paths")
	querySpec := r.URL.Query().Get("query")
	switch {
	case pathSpec == "" && querySpec == "":
		return nil, fmt.Errorf("missing ?paths=... or ?query=... parameter")
	case pathSpec != "" && querySpec != "":
		return nil, fmt.Errorf("give either ?paths= or ?query=, not both")
	}
	canonical, err := canonicalSpec(pathSpec, querySpec)
	if err != nil {
		return nil, err
	}
	return s.cachedPrefilter(dtdSource, canonical, entryLabel(r, pathSpec, querySpec))
}

// canonicalSpec resolves a request's projection spec — a literal path list
// or an XQuery expression — to the canonical path-set spelling: paths
// parsed, deduplicated and sorted. Requests naming the same set in a
// different order (or extracting it from a query) therefore share one cache
// key and one compiled plan.
func canonicalSpec(pathSpec, querySpec string) (string, error) {
	var set *paths.Set
	var err error
	if pathSpec != "" {
		set, err = paths.ParseSet(pathSpec)
	} else {
		set, err = paths.ExtractQuery(querySpec)
	}
	if err != nil {
		return "", err
	}
	return set.String(), nil
}

// cachedPrefilter returns the compiled prefilter for a canonical (DTD, path
// set) key, compiling and inserting on a miss. Compilation happens outside
// the cache lock; a concurrent request for the same key may compile twice,
// but both results are equivalent and put() keeps one.
func (s *server) cachedPrefilter(dtdSource, canonical, label string) (*smp.Prefilter, error) {
	key := dtdSource + "\x00" + canonical
	if v, ok := s.cache.get(key); ok {
		return v.(*smp.Prefilter), nil
	}
	pf, err := smp.Compile(dtdSource, canonical, s.opts)
	if err != nil {
		return nil, err
	}
	return s.cache.put(key, label, pf, pf.PlanStats().MemBytes).(*smp.Prefilter), nil
}

// entryLabel builds the human-readable /stats identity of a cache entry.
// The cache key embeds the full DTD source; the label deliberately does not.
func entryLabel(r *http.Request, pathSpec, querySpec string) string {
	dtdID := "dtd=inline"
	if dataset := r.URL.Query().Get("dataset"); dataset != "" {
		dtdID = "dataset=" + dataset
	}
	if pathSpec != "" {
		return dtdID + " paths=" + pathSpec
	}
	return dtdID + " query=" + querySpec
}

// requestDTD resolves the DTD source of a request: either a bundled dataset
// named by ?dataset= or literal (percent-encoded) DTD text in the X-SMP-DTD
// header.
func requestDTD(r *http.Request) (string, error) {
	dataset := r.URL.Query().Get("dataset")
	header := r.Header.Get("X-SMP-DTD")
	switch {
	case dataset != "" && header != "":
		return "", fmt.Errorf("give either ?dataset= or the X-SMP-DTD header, not both")
	case dataset != "":
		return smp.DatasetDTD(smp.Dataset(dataset))
	case header != "":
		// Percent-decoding only: form decoding (QueryUnescape) would turn a
		// literal '+' — the DTD's one-or-more operator — into a space.
		src, err := url.PathUnescape(header)
		if err != nil {
			return "", fmt.Errorf("X-SMP-DTD header is not valid percent-encoded text: %v", err)
		}
		return src, nil
	default:
		return "", fmt.Errorf("missing DTD: give ?dataset=xmark|medline or the X-SMP-DTD header (percent-encoded DTD source)")
	}
}

// setStatsHeaders exposes the per-run counters as response trailers/headers.
func setStatsHeaders(h http.Header, stats smp.Stats) {
	h.Set("X-SMP-Bytes-Read", strconv.FormatInt(stats.BytesRead, 10))
	h.Set("X-SMP-Bytes-Written", strconv.FormatInt(stats.BytesWritten, 10))
	h.Set("X-SMP-Char-Comparisons", strconv.FormatInt(stats.CharComparisons, 10))
	h.Set("X-SMP-Tags-Matched", strconv.FormatInt(stats.TagsMatched, 10))
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// statsResponse is the JSON shape of /stats. CacheBytes is the summed
// eviction weight the -cachebytes budget counts (compiled plan plus cache
// key per entry); CacheEntries breaks each entry into its plan footprint —
// the shared, immutable tables its concurrent runs execute against — and
// its full weight.
type statsResponse struct {
	UptimeSeconds      float64          `json:"uptime_seconds"`
	Requests           int64            `json:"requests"`
	Failures           int64            `json:"failures"`
	IntraWorkers       int              `json:"intra_workers"`
	IntraMinBytes      int64            `json:"intra_min_bytes"`
	IntraRequests      int64            `json:"intra_requests"`
	MultiRequests      int64            `json:"multi_requests"`
	MultiIntraRequests int64            `json:"multi_intra_requests"`
	MultiQueries       int64            `json:"multi_queries"`
	Cancelled          int64            `json:"cancelled"`
	BytesRead          int64            `json:"bytes_read"`
	BytesWritten       int64            `json:"bytes_written"`
	ZeroCopyRuns       int64            `json:"zero_copy_runs"`
	CacheSize          int              `json:"cache_size"`
	CacheBytes         int64            `json:"cache_bytes"`
	CacheHits          int64            `json:"cache_hits"`
	CacheMisses        int64            `json:"cache_misses"`
	CacheEvictions     int64            `json:"cache_evictions"`
	CacheEntries       []cacheEntryInfo `json:"cache_entries"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	entries, size, cacheBytes, hits, misses, evictions := s.cache.view()
	resp := statsResponse{
		UptimeSeconds:      time.Since(s.start).Seconds(),
		Requests:           s.requests.Load(),
		Failures:           s.failures.Load(),
		IntraWorkers:       s.intraWorkers,
		IntraMinBytes:      s.intraMin,
		IntraRequests:      s.intraRequests.Load(),
		MultiRequests:      s.multiRequests.Load(),
		MultiIntraRequests: s.multiIntraRequests.Load(),
		MultiQueries:       s.multiQueries.Load(),
		Cancelled:          s.cancelled.Load(),
		BytesRead:          s.bytesRead.Load(),
		BytesWritten:       s.bytesWritten.Load(),
		ZeroCopyRuns:       s.zeroCopyRuns.Load(),
		CacheSize:          size,
		CacheBytes:         cacheBytes,
		CacheHits:          hits,
		CacheMisses:        misses,
		CacheEvictions:     evictions,
		CacheEntries:       entries,
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("smpserve: encoding /stats: %v", err)
	}
}

// fail writes a plain-text error response and counts the failure.
func (s *server) fail(w http.ResponseWriter, code int, msg string) {
	s.failures.Add(1)
	http.Error(w, "smpserve: "+msg, code)
}
