// Command smpserve exposes SMP prefiltering as an HTTP service: compile
// once, serve many. Each request names a DTD and a projection-path set (or a
// query to extract the paths from); the compiled prefilter is kept in an LRU
// cache keyed by the (DTD, paths) pair, and the document is streamed from
// the request body through the prefilter into the response.
//
// Endpoints:
//
//	POST /project?dataset=xmark&paths=/*,//item/name%23
//	POST /project?dataset=medline&query=<q>{//MedlineCitation/Article}</q>
//	POST /project?paths=...        (DTD source in the X-SMP-DTD header)
//	POST /project?paths=...&doc=sha256:<hex>   (project a cached document)
//	POST /multiproject?dataset=xmark&paths=...&paths=...   (one scan, N queries)
//	POST /documents                (upload a document; answers with its ETag)
//	GET  /documents/sha256:<hex>   (fetch a cached document)
//	GET  /healthz
//	GET  /stats
//	GET  /metrics
//
// Cache keys are canonical: a path set is parsed, deduplicated and sorted
// before it is looked up, so requests naming the same projection paths in a
// different order — or extracting them from an equivalent query expression —
// share one compiled plan. /multiproject accepts one repeated paths= (or
// query=) parameter per query, projects the body for all of them in a single
// document scan (see smp.MultiPrefilter), and answers multipart/mixed with
// one part per query in parameter order; per-query counters and errors ride
// in the part headers.
//
// # Request coalescing
//
// Production traffic does not pre-batch its queries into /multiproject
// calls, so the server batches for it: concurrent /project requests that
// target the same document — identified by content hash, whether the
// document arrives in the body, sits in the document cache, or lives under
// -docroot — are held in a small window (-coalescewindow, fired early at
// -coalescemax requests) and served by one MultiProject pass. Every
// coalesced response is byte-identical to the uncoalesced response for the
// same (document, paths) pair; per-query errors are isolated, and a client
// that disconnects mid-wait abandons only its own response — the batch runs
// to completion for its batchmates and is cancelled only when every waiter
// is gone. A single request can opt out with ?coalesce=off. Bodies with an
// unknown Content-Length or larger than -coalescemaxbytes bypass the
// coalescer and stream with constant memory as before.
//
// # Document cache
//
// POST /documents uploads a document into a content-addressed cache: the
// response carries the document's ETag ("sha256:<hex>", quoted), re-uploads
// of identical content are deduplicated, and an If-None-Match request header
// naming a cached digest answers 304 without reading the body. Subsequent
// projections reference the document as /project?doc=sha256:<hex> with an
// empty body — hot documents are scanned straight from a read-only memory
// mapping of the server's spool directory (internal/mmapio; heap-backed on
// platforms without mmap) instead of being re-uploaded per request. The
// cache is LRU-bounded by -doccache bytes; an evicted document answers 404
// and the client re-uploads.
//
// # Candidate index
//
// The first projection of a cached document for a given query vocabulary
// scans it once and persists the verified candidate stream as an index
// sidecar next to the spool file (smp.Index, <hash>.<fingerprint>.smpidx);
// every later ?doc= projection with a covered vocabulary replays the stored
// candidates through the automaton instead of re-searching the document —
// byte-identical output, counted as index_hits in /stats (index_skips when
// a projection had to scan, e.g. past the per-document index cap). This
// serves the coalesced and uncoalesced paths alike. With a persistent
// -doccachedir the server warm-restarts: spooled documents are
// digest-verified and re-admitted on startup, and their sidecars serve
// again without a single rescan — scan once, serve forever.
//
// # Admission control
//
// Work the server must buffer — coalesced bodies and /documents uploads —
// is bounded by -maxinflight bytes. Beyond the budget the server sheds load
// with 429 + Retry-After instead of growing the heap. Streamed (uncoalesced)
// projections use constant memory and are never shed.
//
// # Observability
//
// The document is the POST body; the projection is the response body. The
// per-run counters are reported in X-SMP-* response trailers (headers on
// coalesced responses, which are buffered), service-level counters at
// /stats: requests, failures, cache hits, coalesced_requests, the
// batch-size histogram, document-cache hits/bytes, shed_requests, and more.
// The /stats JSON is one consistent snapshot: every counter group is read
// in a single cut under its lock, never assembled field-by-field while
// requests mutate it.
//
// GET /metrics renders the same registry (internal/obs) in Prometheus text
// exposition format: every /stats counter plus per-endpoint request counts
// and latency histograms, the coalesce batch-size histogram, and a
// build-info gauge — /stats and /metrics reconcile by construction because
// they are two views of one instrument set. Requests are logged as
// structured log/slog lines (method, path, status, bytes, duration,
// coalesce batch); -logformat selects text or JSON, and -slowlog promotes
// requests over the threshold to warnings. -pprof serves net/http/pprof on
// a separate admin listener, kept off the public mux.
//
// Every projection runs under the request's context: when a client
// disconnects mid-stream the in-flight projection is aborted at its next
// chunk boundary and counted in /stats as "cancelled". Request bodies that
// declare a Content-Length of at least -intramin bytes are projected with
// intra-document parallelism (-intra scan workers splitting the single
// stream, see internal/pipeline); the same policy applies to coalesced
// batches and /multiproject. The prefilter cache can be bounded both by
// entry count (-cache) and by the total memory of the compiled plans
// (-cachebytes); SIGINT or SIGTERM triggers a graceful shutdown that drains
// in-flight projections (-drain).
//
// Example:
//
//	smpserve -addr :8080 -cache 64 &
//	smpgen -dataset xmark -size 8MiB > doc.xml
//	ETAG=$(curl -si --data-binary @doc.xml localhost:8080/documents | sed -n 's/^Etag: //Ip' | tr -d '\r')
//	curl -sg "localhost:8080/project?dataset=xmark&paths=//australia//description%23&doc=${ETAG//\"/}"
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"mime/multipart"
	"net"
	"net/http"
	"net/http/pprof"
	"net/textproto"
	"net/url"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"smp"
	"smp/internal/paths"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		cache      = flag.Int("cache", 64, "maximum number of compiled prefilters kept in the LRU cache")
		cacheBytes = flag.Int64("cachebytes", 0, "byte budget for the cached compiled plans (0 = unlimited; entries are weighed by plan footprint)")
		chunk      = flag.Int("chunk", 0, "streaming window chunk size in bytes (0 = default 32 KiB)")
		drain      = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout for in-flight requests")
		intra      = flag.Int("intra", runtime.GOMAXPROCS(0), "intra-document scan workers for large request bodies (<=1 = always serial)")
		intraMin   = flag.Int64("intramin", 4<<20, "request body size in bytes from which intra-document parallelism kicks in (requires a Content-Length)")
		docroot    = flag.String("docroot", "", "directory of server-local documents: /project?doc=<name> projects the named file (memory-mapped when possible) instead of the request body")

		coalesceWindow   = flag.Duration("coalescewindow", 2*time.Millisecond, "how long the first request for a document waits for same-document company (0 disables coalescing)")
		coalesceMax      = flag.Int("coalescemax", 16, "coalesced batch fires early at this many requests")
		coalesceMaxBytes = flag.Int64("coalescemaxbytes", 8<<20, "largest request body the coalescer will buffer; bigger bodies stream uncoalesced")
		docCacheBytes    = flag.Int64("doccache", 256<<20, "byte budget of the content-addressed document cache (0 disables /documents)")
		docCacheDir      = flag.String("doccachedir", "", "spool directory for cached documents (default: a fresh temp dir, removed on shutdown)")
		maxInflight      = flag.Int64("maxinflight", 256<<20, "total bytes of request bodies buffered at once before shedding with 429 (0 = unlimited)")

		logFormat = flag.String("logformat", "text", "structured log format: text or json")
		slowLog   = flag.Duration("slowlog", 0, "log requests at least this slow as warnings (0 disables the threshold)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this separate admin address (e.g. 127.0.0.1:6060; empty disables)")
	)
	flag.Parse()

	logger, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smpserve:", err)
		os.Exit(1)
	}

	srv := newServer(*cache, *cacheBytes, smp.Options{ChunkSize: *chunk})
	srv.log = logger
	srv.slowLog = *slowLog
	srv.intraWorkers = *intra
	srv.intraMin = *intraMin
	srv.docroot = *docroot
	srv.coalesceMaxBytes = *coalesceMaxBytes
	srv.adm.max = *maxInflight
	if *coalesceWindow > 0 {
		srv.coal = newCoalescer(srv, *coalesceWindow, *coalesceMax)
	}
	var cleanupSpool func()
	if *docCacheBytes > 0 {
		dir := *docCacheDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "smpserve-docs-*")
			if err != nil {
				fmt.Fprintln(os.Stderr, "smpserve:", err)
				os.Exit(1)
			}
			dir = tmp
			cleanupSpool = func() { os.RemoveAll(tmp) }
		}
		srv.docs = newDocCache(dir, *docCacheBytes)
		if *docCacheDir != "" {
			// A persistent spool directory warm-restarts the cache: documents
			// a previous process spooled are digest-verified and re-admitted,
			// their index sidecars served again on first use.
			if n := srv.docs.warmRestart(); n > 0 {
				logger.Info("warm restart re-admitted cached documents", "docs", n, "dir", dir)
			}
		}
	}

	if *pprofAddr != "" {
		go serveAdmin(*pprofAddr, logger)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smpserve:", err)
		os.Exit(1)
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	logger.Info("listening",
		"addr", ln.Addr().String(),
		"cache_capacity", *cache,
		"cache_bytes", *cacheBytes,
		"coalesce_window", *coalesceWindow,
		"doc_cache_bytes", *docCacheBytes)
	err = serveUntilSignal(&http.Server{Handler: srv.routes()}, ln, stop, *drain, logger)
	if cleanupSpool != nil {
		cleanupSpool()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "smpserve:", err)
		os.Exit(1)
	}
	logger.Info("shut down cleanly")
}

// serveAdmin serves the pprof endpoints on a dedicated admin listener so
// profiling never rides the public mux. The explicit handler wiring (instead
// of net/http/pprof's DefaultServeMux side effect) keeps the admin surface
// enumerable: index, cmdline, profile, symbol, trace.
func serveAdmin(addr string, logger *slog.Logger) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	logger.Info("pprof admin listener", "addr", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Error("pprof admin listener failed", "err", err)
	}
}

// serveUntilSignal serves HTTP on ln until a signal arrives on stop, then
// shuts down gracefully: the listener closes immediately, in-flight requests
// get up to timeout to finish, and only then are connections cut. It returns
// nil on a clean shutdown.
func serveUntilSignal(hs *http.Server, ln net.Listener, stop <-chan os.Signal, timeout time.Duration, logger *slog.Logger) error {
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err // the listener failed before any signal arrived
	case sig := <-stop:
		logger.Info("draining in-flight requests", "signal", sig.String(), "timeout", timeout)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		hs.Close()
		return fmt.Errorf("graceful shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// server holds the shared state of the service: the prefilter cache, the
// compile options, the coalescer, the document cache, the admission budget
// and the service-level counters.
type server struct {
	cache *prefilterCache
	opts  smp.Options
	start time.Time

	// intraWorkers and intraMin select intra-document parallel projection
	// (Project with WithWorkers) for request bodies whose Content-Length
	// is at least intraMin bytes; smaller or chunked bodies stay serial.
	intraWorkers int
	intraMin     int64

	// docroot, when non-empty, lets /project?doc=<name> read the named
	// server-local file instead of the request body. Files take the
	// zero-copy mmap path (internal/mmapio) when the platform supports it.
	docroot string

	// coal batches concurrent same-document requests (nil = coalescing
	// off); docs is the content-addressed document cache (nil = off); adm
	// bounds the bytes buffered for both.
	coal             *coalescer
	docs             *docCache
	adm              admission
	coalesceMaxBytes int64

	// metrics is the obs.Registry-backed instrument set behind /metrics and
	// /stats; log and slowLog drive the structured request log.
	metrics *metrics
	log     *slog.Logger
	slowLog time.Duration
}

func newServer(cacheSize int, cacheBytes int64, opts smp.Options) *server {
	s := &server{
		cache:            newPrefilterCache(cacheSize, cacheBytes),
		opts:             opts,
		start:            time.Now(),
		coalesceMaxBytes: 8 << 20,
		log:              slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
	// The func-backed instruments close over s, reading the subsystem
	// counters at scrape time; they tolerate the coalescer and doc cache
	// being wired up (or left nil) after construction.
	s.metrics = newMetrics(s)
	return s
}

// routes wires up the endpoints, each behind the instrumentation middleware
// (per-endpoint counters, latency histogram, request log line).
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/project", s.instrument("/project", s.handleProject))
	mux.Handle("/multiproject", s.instrument("/multiproject", s.handleMultiProject))
	mux.Handle("/documents", s.instrument("/documents", s.handleDocuments))
	mux.Handle("/documents/", s.instrument("/documents", s.handleDocuments))
	mux.Handle("/healthz", s.instrument("/healthz", s.handleHealthz))
	mux.Handle("/stats", s.instrument("/stats", s.handleStats))
	mux.Handle("/metrics", s.instrument("/metrics", s.handleMetrics))
	return mux
}

// admit marks a request in flight; the returned outcome must be committed
// with finish exactly once (handlers defer it on entry).
func (s *server) admit() *reqOutcome {
	m := s.metrics
	m.reg.Commit(func() { m.inFlight.Add(1) })
	return &reqOutcome{}
}

// handleProject streams the request body — or, with doc=<name> against a
// configured -docroot or doc=sha256:<hex> against the document cache, a
// server-held document — through the prefilter selected by the query
// parameters and writes the projection as the response body. When
// coalescing is on, concurrent requests for the same document share one
// MultiProject pass (see coalesce.go).
func (s *server) handleProject(w http.ResponseWriter, r *http.Request) {
	o := s.admit()
	defer s.finish(o)
	doc := r.URL.Query().Get("doc")
	// A doc= request carries no body, so GET is as natural as POST there.
	if r.Method != http.MethodPost && !(r.Method == http.MethodGet && doc != "") {
		s.failOutcome(w, o, http.StatusMethodNotAllowed, "POST the document to /project")
		return
	}
	dtdSource, canonical, label, err := s.resolveSpec(r)
	if err != nil {
		s.failOutcome(w, o, http.StatusBadRequest, err.Error())
		return
	}

	if s.coal.enabled() && r.URL.Query().Get("coalesce") != "off" {
		if s.serveCoalesced(w, r, o, dtdSource, canonical, label, doc) {
			return
		}
	}

	pf, err := s.cachedPrefilter(dtdSource, canonical, label)
	if err != nil {
		s.failOutcome(w, o, http.StatusBadRequest, err.Error())
		return
	}

	src := io.Reader(r.Body)
	srcSize := r.ContentLength
	if doc == "" && srcSize >= 0 && srcSize <= s.coalesceMaxBytes && s.adm.tryReserve(srcSize) {
		// Buffer bounded bodies before projecting, on the coalesced and
		// uncoalesced paths alike. Beyond a small read-ahead (256 KiB),
		// net/http closes an unconsumed request body the moment the handler
		// starts writing the response, so true duplex streaming only works
		// for bodies the server has already drained; genuine streaming
		// remains for chunked or oversized uploads, whose projections write
		// nothing until well after the engine has consumed its input window.
		defer s.adm.release(srcSize)
		data, err := io.ReadAll(r.Body)
		if err != nil {
			o.failed, o.cancelled = true, true
			return // client aborted its own upload
		}
		src = bytes.NewReader(data)
		srcSize = int64(len(data))
	}
	var docIx *smp.Index
	if doc != "" {
		if hash, ok := parseDocRef(doc); ok {
			// A cache reference on the uncoalesced path (coalescing off or
			// bypassed): scan the pinned bytes directly — or better, replay
			// the document's candidate index, built lazily on the first
			// projection for this vocabulary and persisted as a sidecar.
			if !s.docs.enabled() {
				s.failOutcome(w, o, http.StatusBadRequest, "doc="+hashScheme+":... requires the server to run with -doccache")
				return
			}
			e, ok := s.docs.get(hash)
			if !ok {
				s.failOutcome(w, o, http.StatusNotFound, "document "+formatETag(hash)+" not cached; upload it to /documents first")
				return
			}
			defer s.docs.release(e)
			src = bytes.NewReader(e.data)
			srcSize = int64(len(e.data))
			o.zeroCopy = e.mapping != nil
			if docIx = s.docIndex(e, pf); docIx == nil {
				o.indexSkips++ // at the per-document index cap: this run scans
			}
		} else {
			if s.docroot == "" {
				s.failOutcome(w, o, http.StatusBadRequest, "doc= requires the server to run with -docroot")
				return
			}
			f, err := s.openDoc(doc)
			if err != nil {
				s.failOutcome(w, o, http.StatusNotFound, "document not found")
				return
			}
			defer f.Close()
			if fi, err := f.Stat(); err == nil {
				srcSize = fi.Size()
			}
			src = f
		}
	}

	w.Header().Set("Content-Type", "application/xml")
	// The counters are only known after the body has streamed, so they are
	// sent as HTTP trailers (declared before the first body write).
	w.Header().Set("Trailer", "X-SMP-Bytes-Read, X-SMP-Bytes-Written, X-SMP-Char-Comparisons, X-SMP-Tags-Matched")
	// Count an intra-document run only if the body is also large enough for
	// the split pipeline itself — below pf.MinParallelInput, WithWorkers
	// silently falls back to the serial engine and /stats must not claim a
	// parallel run.
	var opts []smp.ProjectOption
	if s.intraWorkers > 1 && srcSize >= s.intraMin &&
		srcSize >= int64(pf.MinParallelInput(s.intraWorkers)) {
		opts = append(opts, smp.WithWorkers(s.intraWorkers))
		o.intra = true
	}
	if docIx != nil {
		opts = append(opts, smp.WithIndex(docIx))
	}
	out := &countingWriter{w: w}
	// The request context makes the projection cancellable end to end: a
	// client that disconnects mid-stream aborts the in-flight run at its
	// next chunk boundary instead of burning a core on a dead connection.
	stats, err := pf.Project(r.Context(), out, src, opts...)
	o.bytesRead += stats.BytesRead
	o.bytesWritten += stats.BytesWritten
	o.indexHits += stats.IndexHits
	o.indexSkips += stats.IndexSkips
	o.indexSummarySkips += stats.IndexSummarySkips
	if stats.ZeroCopyInput {
		o.zeroCopy = true
	}
	if err != nil {
		o.failed = true
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || r.Context().Err() != nil {
			// Client went away (or the handler deadline fired): the abort is
			// accounted separately so /stats distinguishes dead-connection
			// cleanup from real projection failures.
			o.cancelled = true
		}
		if out.n == 0 {
			// Nothing streamed yet (e.g. a document that does not conform to
			// the DTD failed up front): a clean error response is possible.
			w.Header().Del("Trailer")
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.WriteHeader(http.StatusUnprocessableEntity)
			fmt.Fprintln(w, "smpserve:", err)
			return
		}
		// Headers are already sent once the projection started streaming, so
		// a mid-stream failure can only be logged and the connection cut.
		s.log.Error("projection failed mid-stream", "bytes_written", out.n, "err", err)
		panic(http.ErrAbortHandler)
	}
	setStatsHeaders(w.Header(), stats)
}

// handleDocuments implements the content-addressed document cache API:
// POST /documents uploads (dedup by digest, ETag in the response,
// If-None-Match skips the upload), GET /documents/sha256:<hex> fetches.
func (s *server) handleDocuments(w http.ResponseWriter, r *http.Request) {
	o := s.admit()
	defer s.finish(o)
	if !s.docs.enabled() {
		s.failOutcome(w, o, http.StatusBadRequest, "document cache disabled (run with -doccache)")
		return
	}
	switch {
	case r.Method == http.MethodPost && strings.TrimSuffix(r.URL.Path, "/") == "/documents":
		s.handleDocUpload(w, r, o)
	case r.Method == http.MethodGet || r.Method == http.MethodHead:
		ref := strings.TrimPrefix(r.URL.Path, "/documents/")
		hash, ok := parseDocRef(ref)
		if !ok {
			s.failOutcome(w, o, http.StatusBadRequest, "malformed document reference (want /documents/"+hashScheme+":<64 hex digits>)")
			return
		}
		e, ok := s.docs.get(hash)
		if !ok {
			s.failOutcome(w, o, http.StatusNotFound, "document not cached")
			return
		}
		defer s.docs.release(e)
		w.Header().Set("ETag", formatETag(hash))
		if matchesIfNoneMatch(r.Header.Get("If-None-Match"), hash) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("Content-Type", "application/xml")
		w.Header().Set("Content-Length", strconv.Itoa(len(e.data)))
		if r.Method == http.MethodHead {
			return
		}
		n, _ := w.Write(e.data)
		o.bytesWritten += int64(n)
	default:
		s.failOutcome(w, o, http.StatusMethodNotAllowed, "POST /documents to upload, GET /documents/"+hashScheme+":<hex> to fetch")
	}
}

// handleDocUpload stores one document. With If-None-Match naming an already
// cached digest the body is not even read — the point of content addressing
// is that the client can skip the upload entirely.
func (s *server) handleDocUpload(w http.ResponseWriter, r *http.Request, o *reqOutcome) {
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		if hash, ok := parseDocRef(inm); ok {
			if e, ok := s.docs.get(hash); ok {
				s.docs.release(e)
				w.Header().Set("ETag", formatETag(hash))
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
	}
	size := r.ContentLength
	if size < 0 {
		s.failOutcome(w, o, http.StatusLengthRequired, "upload needs a Content-Length")
		return
	}
	if !s.adm.reserve(size) {
		s.shedRequest(w, o)
		return
	}
	defer s.adm.release(size)
	data, err := io.ReadAll(r.Body)
	if err != nil {
		o.failed, o.cancelled = true, true
		return // client aborted its own upload
	}
	o.bytesRead += int64(len(data))
	hash := hashBytes(data)
	e, err := s.docs.put(hash, data)
	if err != nil {
		s.failOutcome(w, o, http.StatusInsufficientStorage, err.Error())
		return
	}
	s.docs.release(e)
	etag := formatETag(hash)
	w.Header().Set("ETag", etag)
	w.Header().Set("Location", "/documents/"+hashScheme+":"+hash)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	fmt.Fprintf(w, "{\"etag\":%q,\"bytes\":%d}\n", etag, len(data))
}

// openDoc resolves a doc= name inside the docroot. The name is cleaned as
// a rooted path first, so ".." segments cannot escape the root, and only
// regular files are served — directories, sockets and dangling symlinks
// all answer "not found" instead of panicking downstream.
func (s *server) openDoc(name string) (*os.File, error) {
	path := filepath.Join(s.docroot, filepath.Clean("/"+name))
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil || !fi.Mode().IsRegular() {
		f.Close()
		return nil, fmt.Errorf("smpserve: %q is not a regular file", name)
	}
	return f, nil
}

// handleMultiProject projects one request body for K queries in a single
// scan (POST /multiproject?dataset=xmark&paths=...&paths=...). Each repeated
// paths (or query) parameter is one query; the response is multipart/mixed
// with one part per query, in parameter order. Part headers carry the
// query's canonical path set and its per-query counters; a query that failed
// carries an X-SMP-Error header and an empty body instead, without affecting
// its siblings. Per-query outputs are buffered in memory for the multipart
// framing, so this endpoint suits query fan-out on moderate documents; for
// huge single-query streams, /project streams unbuffered.
func (s *server) handleMultiProject(w http.ResponseWriter, r *http.Request) {
	o := s.admit()
	defer s.finish(o)
	if r.Method != http.MethodPost {
		s.failOutcome(w, o, http.StatusMethodNotAllowed, "POST the document to /multiproject")
		return
	}
	multi, specs, err := s.multiPrefilterFor(r)
	if err != nil {
		s.failOutcome(w, o, http.StatusBadRequest, err.Error())
		return
	}
	o.multi = true
	o.queries = int64(multi.Len())

	bufs := make([]bytes.Buffer, multi.Len())
	dsts := make([]io.Writer, multi.Len())
	for i := range bufs {
		dsts[i] = &bufs[i]
	}
	// Same intra-document policy as /project: a body large enough for the
	// parallel segment scan is served by the unified K×W pipeline. Below
	// MinParallelInput, WithWorkers silently falls back to the serial shared
	// scan and /stats must not claim a parallel run.
	opts := []smp.ProjectOption{}
	if s.intraWorkers > 1 && r.ContentLength >= s.intraMin &&
		r.ContentLength >= int64(multi.MinParallelInput(s.intraWorkers)) {
		opts = append(opts, smp.WithWorkers(s.intraWorkers))
		o.multiIntra = true
	}
	var agg smp.Stats
	qstats, runErr := multi.MultiProject(r.Context(), dsts, r.Body, append(opts, smp.WithStatsInto(&agg))...)
	o.bytesRead += agg.BytesRead
	o.bytesWritten += agg.BytesWritten
	var merr *smp.MultiError
	if runErr != nil {
		o.failed = true
		if r.Context().Err() != nil {
			// Client went away: nothing has been written yet (outputs are
			// buffered), so just account for the abort and drop the
			// connection.
			o.cancelled = true
			panic(http.ErrAbortHandler)
		}
		if !errors.As(runErr, &merr) {
			s.failOutcome(w, o, http.StatusBadRequest, runErr.Error())
			return
		}
	}

	mw := multipart.NewWriter(w)
	w.Header().Set("Content-Type", "multipart/mixed; boundary="+mw.Boundary())
	w.Header().Set("X-SMP-Queries", strconv.Itoa(multi.Len()))
	setStatsHeaders(w.Header(), agg)
	for i := range bufs {
		h := make(textproto.MIMEHeader)
		h.Set("Content-Type", "application/xml")
		h.Set("X-SMP-Query", strconv.Itoa(i))
		h.Set("X-SMP-Paths", specs[i])
		h.Set("X-SMP-Bytes-Written", strconv.FormatInt(qstats[i].BytesWritten, 10))
		h.Set("X-SMP-Tags-Matched", strconv.FormatInt(qstats[i].TagsMatched, 10))
		if merr != nil && merr.Errs[i] != nil {
			h.Set("X-SMP-Error", merr.Errs[i].Error())
		}
		pw, err := mw.CreatePart(h)
		if err != nil {
			s.log.Error("multipart framing failed", "err", err)
			panic(http.ErrAbortHandler)
		}
		if merr == nil || merr.Errs[i] == nil {
			if _, err := pw.Write(bufs[i].Bytes()); err != nil {
				s.log.Error("writing query output failed", "query", i, "err", err)
				panic(http.ErrAbortHandler)
			}
		}
	}
	if err := mw.Close(); err != nil {
		s.log.Error("closing multipart response failed", "err", err)
	}
}

// multiPrefilterFor resolves the request's DTD plus its repeated paths= (or
// query=) parameters to a merged multi-query prefilter. Each query is first
// resolved through the same LRU the /project endpoint uses — so a
// multi-query request warms (and reuses) exactly the per-query plans that
// standalone requests serve from — and the merged entry is then cached under
// the ordered per-query key list, weighed merge-aware: only the union scan
// tables it adds on top of the already-weighed per-query plans.
func (s *server) multiPrefilterFor(r *http.Request) (*smp.MultiPrefilter, []string, error) {
	dtdSource, err := requestDTD(r)
	if err != nil {
		return nil, nil, err
	}
	pathsList := r.URL.Query()["paths"]
	queryList := r.URL.Query()["query"]
	switch {
	case len(pathsList) == 0 && len(queryList) == 0:
		return nil, nil, fmt.Errorf("missing ?paths=... or ?query=... parameters (repeat one per query)")
	case len(pathsList) > 0 && len(queryList) > 0:
		return nil, nil, fmt.Errorf("give either ?paths= or ?query= parameters, not both")
	}
	raw, isQuery := pathsList, false
	if len(queryList) > 0 {
		raw, isQuery = queryList, true
	}
	dtdID := "dtd=inline"
	if dataset := r.URL.Query().Get("dataset"); dataset != "" {
		dtdID = "dataset=" + dataset
	}
	specs := make([]string, len(raw))
	for i, spec := range raw {
		canonical, err := canonicalSpecOne(spec, isQuery)
		if err != nil {
			return nil, nil, fmt.Errorf("query %d: %v", i, err)
		}
		specs[i] = canonical
	}
	// Canonicalization alone determines the merged key, so a warm multi
	// entry serves without touching (or recompiling) the per-query entries —
	// under capacity pressure the singles may have been evicted, and
	// resolving them first would rebuild them on every request just to
	// discard the result on this hit.
	multiKey := "\x00multi\x00" + dtdSource + "\x00" + strings.Join(specs, "\x00")
	if v, ok := s.cache.get(multiKey); ok {
		return v.(*smp.MultiPrefilter), specs, nil
	}
	pfs := make([]*smp.Prefilter, len(specs))
	for i, canonical := range specs {
		pf, err := s.cachedPrefilter(dtdSource, canonical, dtdID+" paths="+canonical)
		if err != nil {
			return nil, nil, fmt.Errorf("query %d: %v", i, err)
		}
		pfs[i] = pf
	}
	multi, err := smp.NewMultiPrefilter(pfs...)
	if err != nil {
		return nil, nil, err
	}
	// The merged entry weighs only the union scan tables: its per-query
	// plans are shared with (and weighed by) the single entries resolved
	// above. The known tradeoff: if capacity pressure later evicts a single
	// entry, the surviving multi entry still pins that plan, so totalBytes
	// undercounts until the multi entry is evicted too — size -cache at
	// least one above the largest expected query fan-out to keep the
	// accounting tight.
	label := fmt.Sprintf("multi %s queries=%d union=%d", dtdID, multi.Len(), multi.PlanStats().UnionKeywords)
	v := s.cache.put(multiKey, label, multi, multi.PlanStats().ScanBytes)
	return v.(*smp.MultiPrefilter), specs, nil
}

// canonicalSpecOne canonicalizes one multi-query parameter.
func canonicalSpecOne(spec string, isQuery bool) (string, error) {
	if isQuery {
		return canonicalSpec("", spec)
	}
	return canonicalSpec(spec, "")
}

// countingWriter tracks whether (and how much of) the response body has
// been written, which decides how a projection error can be reported.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// resolveSpec resolves the request's DTD source and canonical projection
// spec without compiling anything — the parts of request validation that
// are cheap enough to run before a coalescing decision.
func (s *server) resolveSpec(r *http.Request) (dtdSource, canonical, label string, err error) {
	dtdSource, err = requestDTD(r)
	if err != nil {
		return "", "", "", err
	}
	pathSpec := r.URL.Query().Get("paths")
	querySpec := r.URL.Query().Get("query")
	switch {
	case pathSpec == "" && querySpec == "":
		return "", "", "", fmt.Errorf("missing ?paths=... or ?query=... parameter")
	case pathSpec != "" && querySpec != "":
		return "", "", "", fmt.Errorf("give either ?paths= or ?query=, not both")
	}
	canonical, err = canonicalSpec(pathSpec, querySpec)
	if err != nil {
		return "", "", "", err
	}
	return dtdSource, canonical, entryLabel(r, pathSpec, querySpec), nil
}

// canonicalSpec resolves a request's projection spec — a literal path list
// or an XQuery expression — to the canonical path-set spelling: paths
// parsed, deduplicated and sorted. Requests naming the same set in a
// different order (or extracting it from a query) therefore share one cache
// key and one compiled plan.
func canonicalSpec(pathSpec, querySpec string) (string, error) {
	var set *paths.Set
	var err error
	if pathSpec != "" {
		set, err = paths.ParseSet(pathSpec)
	} else {
		set, err = paths.ExtractQuery(querySpec)
	}
	if err != nil {
		return "", err
	}
	return set.String(), nil
}

// cachedPrefilter returns the compiled prefilter for a canonical (DTD, path
// set) key, compiling and inserting on a miss. Compilation happens outside
// the cache lock; a concurrent request for the same key may compile twice,
// but both results are equivalent and put() keeps one.
func (s *server) cachedPrefilter(dtdSource, canonical, label string) (*smp.Prefilter, error) {
	key := dtdSource + "\x00" + canonical
	if v, ok := s.cache.get(key); ok {
		return v.(*smp.Prefilter), nil
	}
	pf, err := smp.Compile(dtdSource, canonical, s.opts)
	if err != nil {
		return nil, err
	}
	return s.cache.put(key, label, pf, pf.PlanStats().MemBytes).(*smp.Prefilter), nil
}

// entryLabel builds the human-readable /stats identity of a cache entry.
// The cache key embeds the full DTD source; the label deliberately does not.
func entryLabel(r *http.Request, pathSpec, querySpec string) string {
	dtdID := "dtd=inline"
	if dataset := r.URL.Query().Get("dataset"); dataset != "" {
		dtdID = "dataset=" + dataset
	}
	if pathSpec != "" {
		return dtdID + " paths=" + pathSpec
	}
	return dtdID + " query=" + querySpec
}

// requestDTD resolves the DTD source of a request: either a bundled dataset
// named by ?dataset= or literal (percent-encoded) DTD text in the X-SMP-DTD
// header.
func requestDTD(r *http.Request) (string, error) {
	dataset := r.URL.Query().Get("dataset")
	header := r.Header.Get("X-SMP-DTD")
	switch {
	case dataset != "" && header != "":
		return "", fmt.Errorf("give either ?dataset= or the X-SMP-DTD header, not both")
	case dataset != "":
		return smp.DatasetDTD(smp.Dataset(dataset))
	case header != "":
		// Percent-decoding only: form decoding (QueryUnescape) would turn a
		// literal '+' — the DTD's one-or-more operator — into a space.
		src, err := url.PathUnescape(header)
		if err != nil {
			return "", fmt.Errorf("X-SMP-DTD header is not valid percent-encoded text: %v", err)
		}
		return src, nil
	default:
		return "", fmt.Errorf("missing DTD: give ?dataset=xmark|medline or the X-SMP-DTD header (percent-encoded DTD source)")
	}
}

// setStatsHeaders exposes the per-run counters as response trailers/headers.
func setStatsHeaders(h http.Header, stats smp.Stats) {
	h.Set("X-SMP-Bytes-Read", strconv.FormatInt(stats.BytesRead, 10))
	h.Set("X-SMP-Bytes-Written", strconv.FormatInt(stats.BytesWritten, 10))
	h.Set("X-SMP-Char-Comparisons", strconv.FormatInt(stats.CharComparisons, 10))
	h.Set("X-SMP-Tags-Matched", strconv.FormatInt(stats.TagsMatched, 10))
}

// handleHealthz answers the liveness probe with the binary's build identity
// (Go version, module version, VCS revision), so a fleet check can tell
// which build answered. "status":"ok" is kept for probes that grep for it.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	goVersion, modVersion, revision := buildInfo()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\":\"ok\",\"goversion\":%q,\"version\":%q,\"revision\":%q}\n",
		goVersion, modVersion, revision)
}

// statsResponse is the JSON shape of /stats. Each counter group is one
// consistent snapshot: the request counters are copied in a single cut
// under the metrics lock (see metrics.go), the prefilter-cache and
// document-cache views each under their own lock — never assembled
// field-by-field while requests mutate them. CacheBytes is the summed
// eviction weight the -cachebytes budget counts (compiled plan plus cache
// key per entry); CacheEntries breaks each entry into its plan footprint
// and its full weight.
type statsResponse struct {
	UptimeSeconds      float64 `json:"uptime_seconds"`
	Requests           int64   `json:"requests"`
	RequestsInFlight   int64   `json:"requests_in_flight"`
	Failures           int64   `json:"failures"`
	IntraWorkers       int     `json:"intra_workers"`
	IntraMinBytes      int64   `json:"intra_min_bytes"`
	IntraRequests      int64   `json:"intra_requests"`
	MultiRequests      int64   `json:"multi_requests"`
	MultiIntraRequests int64   `json:"multi_intra_requests"`
	MultiQueries       int64   `json:"multi_queries"`
	Cancelled          int64   `json:"cancelled"`
	BytesRead          int64   `json:"bytes_read"`
	BytesWritten       int64   `json:"bytes_written"`
	ZeroCopyRuns       int64   `json:"zero_copy_runs"`
	IndexHits          int64   `json:"index_hits"`
	IndexSkips         int64   `json:"index_skips"`
	IndexSummarySkips  int64   `json:"index_summary_skips"`

	CoalescedRequests int64            `json:"coalesced_requests"`
	CoalesceBatches   int64            `json:"coalesce_batches"`
	CoalesceBatchHist map[string]int64 `json:"coalesce_batch_hist"`
	CoalesceWindowMs  float64          `json:"coalesce_window_ms"`
	CoalesceMaxBatch  int              `json:"coalesce_max_batch"`

	ShedRequests  int64 `json:"shed_requests"`
	BufferedBytes int64 `json:"buffered_bytes"`

	DocCache docCacheStats `json:"doc_cache"`

	CacheSize      int              `json:"cache_size"`
	CacheBytes     int64            `json:"cache_bytes"`
	CacheHits      int64            `json:"cache_hits"`
	CacheMisses    int64            `json:"cache_misses"`
	CacheEvictions int64            `json:"cache_evictions"`
	CacheEntries   []cacheEntryInfo `json:"cache_entries"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	c := s.metrics.snapshot()
	buffered, shed := s.adm.view()
	entries, size, cacheBytes, hits, misses, evictions := s.cache.view()
	hist := make(map[string]int64, len(batchBuckets))
	for i, b := range batchBuckets {
		hist[b.label] = c.BatchHist[i]
	}
	resp := statsResponse{
		UptimeSeconds:      time.Since(s.start).Seconds(),
		Requests:           c.Requests,
		RequestsInFlight:   c.InFlight,
		Failures:           c.Failures,
		IntraWorkers:       s.intraWorkers,
		IntraMinBytes:      s.intraMin,
		IntraRequests:      c.IntraRequests,
		MultiRequests:      c.MultiRequests,
		MultiIntraRequests: c.MultiIntraRequests,
		MultiQueries:       c.MultiQueries,
		Cancelled:          c.Cancelled,
		BytesRead:          c.BytesRead,
		BytesWritten:       c.BytesWritten,
		ZeroCopyRuns:       c.ZeroCopyRuns,
		IndexHits:          c.IndexHits,
		IndexSkips:         c.IndexSkips,
		IndexSummarySkips:  c.IndexSummarySkips,
		CoalescedRequests:  c.CoalescedRequests,
		CoalesceBatches:    c.CoalesceBatches,
		CoalesceBatchHist:  hist,
		ShedRequests:       shed,
		BufferedBytes:      buffered,
		DocCache:           s.docs.stats(),
		CacheSize:          size,
		CacheBytes:         cacheBytes,
		CacheHits:          hits,
		CacheMisses:        misses,
		CacheEvictions:     evictions,
		CacheEntries:       entries,
	}
	if s.coal.enabled() {
		resp.CoalesceWindowMs = float64(s.coal.window) / float64(time.Millisecond)
		resp.CoalesceMaxBatch = s.coal.maxBatch
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		s.log.Error("encoding /stats failed", "err", err)
	}
}

// failOutcome writes a plain-text error response and marks the outcome
// failed; the deferred finish commits it.
func (s *server) failOutcome(w http.ResponseWriter, o *reqOutcome, code int, msg string) {
	o.failed = true
	http.Error(w, "smpserve: "+msg, code)
}

// shedRequest answers 429 + Retry-After: the admission budget is exhausted
// and the client should back off briefly and retry.
func (s *server) shedRequest(w http.ResponseWriter, o *reqOutcome) {
	o.failed = true
	w.Header().Set("Retry-After", "1")
	http.Error(w, "smpserve: buffered-byte budget exhausted, retry shortly", http.StatusTooManyRequests)
}
