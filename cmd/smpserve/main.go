// Command smpserve exposes SMP prefiltering as an HTTP service: compile
// once, serve many. Each request names a DTD and a projection-path set (or a
// query to extract the paths from); the compiled prefilter is kept in an LRU
// cache keyed by the (DTD, paths) pair, and the document is streamed from
// the request body through the prefilter into the response.
//
// Endpoints:
//
//	POST /project?dataset=xmark&paths=/*,//item/name%23
//	POST /project?dataset=medline&query=<q>{//MedlineCitation/Article}</q>
//	POST /project?paths=...        (DTD source in the X-SMP-DTD header)
//	GET  /healthz
//	GET  /stats
//
// The document is the POST body; the projection is the response body. The
// per-run counters are reported in X-SMP-* response trailers, service-level
// counters (requests, cache hits, bytes in/out, per-entry plan footprints,
// intra-document parallel runs, cancelled projections) at /stats. Every
// projection runs under the request's context: when a client disconnects
// mid-stream the in-flight projection is aborted at its next chunk boundary
// and counted in /stats as "cancelled". Request bodies that declare a
// Content-Length of at least -intramin bytes are projected with
// intra-document parallelism (-intra scan workers splitting the single
// stream, see internal/split); smaller or chunked bodies use the serial
// engine. The prefilter cache can be bounded both by entry count (-cache)
// and by the total memory of the compiled plans (-cachebytes); SIGINT or
// SIGTERM triggers a graceful shutdown that drains in-flight projections
// (-drain).
//
// Example:
//
//	smpserve -addr :8080 -cache 64 &
//	smpgen -dataset xmark -size 8MiB | curl -sg --data-binary @- \
//	    'localhost:8080/project?dataset=xmark&query=<q>{//australia//description}</q>'
//
// (curl's -g disables URL globbing, which would otherwise strip the braces
// from the query expression.)
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"smp"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		cache      = flag.Int("cache", 64, "maximum number of compiled prefilters kept in the LRU cache")
		cacheBytes = flag.Int64("cachebytes", 0, "byte budget for the cached compiled plans (0 = unlimited; entries are weighed by plan footprint)")
		chunk      = flag.Int("chunk", 0, "streaming window chunk size in bytes (0 = default 32 KiB)")
		drain      = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout for in-flight requests")
		intra      = flag.Int("intra", runtime.GOMAXPROCS(0), "intra-document scan workers for large request bodies (<=1 = always serial)")
		intraMin   = flag.Int64("intramin", 4<<20, "request body size in bytes from which intra-document parallelism kicks in (requires a Content-Length)")
	)
	flag.Parse()

	srv := newServer(*cache, *cacheBytes, smp.Options{ChunkSize: *chunk})
	srv.intraWorkers = *intra
	srv.intraMin = *intraMin
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smpserve:", err)
		os.Exit(1)
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	log.Printf("smpserve: listening on %s (prefilter cache capacity %d, byte budget %d)", ln.Addr(), *cache, *cacheBytes)
	if err := serveUntilSignal(&http.Server{Handler: srv.routes()}, ln, stop, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "smpserve:", err)
		os.Exit(1)
	}
	log.Printf("smpserve: shut down cleanly")
}

// serveUntilSignal serves HTTP on ln until a signal arrives on stop, then
// shuts down gracefully: the listener closes immediately, in-flight requests
// get up to timeout to finish, and only then are connections cut. It returns
// nil on a clean shutdown.
func serveUntilSignal(hs *http.Server, ln net.Listener, stop <-chan os.Signal, timeout time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err // the listener failed before any signal arrived
	case sig := <-stop:
		log.Printf("smpserve: received %v, draining in-flight requests (up to %s)", sig, timeout)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		hs.Close()
		return fmt.Errorf("graceful shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// server holds the shared state of the service: the prefilter cache, the
// compile options, the intra-document parallelism policy and the
// service-level counters.
type server struct {
	cache *prefilterCache
	opts  smp.Options
	start time.Time

	// intraWorkers and intraMin select intra-document parallel projection
	// (Project with WithWorkers) for request bodies whose Content-Length
	// is at least intraMin bytes; smaller or chunked bodies stay serial.
	intraWorkers int
	intraMin     int64

	requests      atomic.Int64
	failures      atomic.Int64
	intraRequests atomic.Int64
	cancelled     atomic.Int64
	bytesRead     atomic.Int64
	bytesWritten  atomic.Int64
}

func newServer(cacheSize int, cacheBytes int64, opts smp.Options) *server {
	return &server{cache: newPrefilterCache(cacheSize, cacheBytes), opts: opts, start: time.Now()}
}

// routes wires up the endpoints.
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/project", s.handleProject)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// handleProject streams the request body through the prefilter selected by
// the query parameters and writes the projection as the response body.
func (s *server) handleProject(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST the document to /project")
		return
	}
	pf, err := s.prefilterFor(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err.Error())
		return
	}

	w.Header().Set("Content-Type", "application/xml")
	// The counters are only known after the body has streamed, so they are
	// sent as HTTP trailers (declared before the first body write).
	w.Header().Set("Trailer", "X-SMP-Bytes-Read, X-SMP-Bytes-Written, X-SMP-Char-Comparisons, X-SMP-Tags-Matched")
	// Count an intra-document run only if the body is also large enough for
	// the split pipeline itself — below pf.MinParallelInput, WithWorkers
	// silently falls back to the serial engine and /stats must not claim a
	// parallel run.
	var opts []smp.ProjectOption
	if s.intraWorkers > 1 && r.ContentLength >= s.intraMin &&
		r.ContentLength >= int64(pf.MinParallelInput(s.intraWorkers)) {
		opts = append(opts, smp.WithWorkers(s.intraWorkers))
		s.intraRequests.Add(1)
	}
	out := &countingWriter{w: w}
	// The request context makes the projection cancellable end to end: a
	// client that disconnects mid-stream aborts the in-flight run at its
	// next chunk boundary instead of burning a core on a dead connection.
	stats, err := pf.Project(r.Context(), out, r.Body, opts...)
	s.bytesRead.Add(stats.BytesRead)
	s.bytesWritten.Add(stats.BytesWritten)
	if err != nil {
		s.failures.Add(1)
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || r.Context().Err() != nil {
			// Client went away (or the handler deadline fired): the abort is
			// accounted separately so /stats distinguishes dead-connection
			// cleanup from real projection failures.
			s.cancelled.Add(1)
		}
		if out.n == 0 {
			// Nothing streamed yet (e.g. a document that does not conform to
			// the DTD failed up front): a clean error response is possible.
			w.Header().Del("Trailer")
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.WriteHeader(http.StatusUnprocessableEntity)
			fmt.Fprintln(w, "smpserve:", err)
			return
		}
		// Headers are already sent once the projection started streaming, so
		// a mid-stream failure can only be logged and the connection cut.
		log.Printf("smpserve: projection failed after %d bytes: %v", out.n, err)
		panic(http.ErrAbortHandler)
	}
	setStatsHeaders(w.Header(), stats)
}

// countingWriter tracks whether (and how much of) the response body has
// been written, which decides how a projection error can be reported.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// prefilterFor resolves the request's (DTD, paths) pair to a compiled
// prefilter, consulting the LRU cache first.
func (s *server) prefilterFor(r *http.Request) (*smp.Prefilter, error) {
	dtdSource, err := requestDTD(r)
	if err != nil {
		return nil, err
	}
	pathSpec := r.URL.Query().Get("paths")
	querySpec := r.URL.Query().Get("query")
	switch {
	case pathSpec == "" && querySpec == "":
		return nil, fmt.Errorf("missing ?paths=... or ?query=... parameter")
	case pathSpec != "" && querySpec != "":
		return nil, fmt.Errorf("give either ?paths= or ?query=, not both")
	}

	key := dtdSource + "\x00p\x00" + pathSpec + "\x00q\x00" + querySpec
	if pf, ok := s.cache.get(key); ok {
		return pf, nil
	}
	// Compile outside the cache lock; a concurrent request for the same key
	// may compile twice, but both results are equivalent and put() keeps one.
	var pf *smp.Prefilter
	if pathSpec != "" {
		pf, err = smp.Compile(dtdSource, pathSpec, s.opts)
	} else {
		pf, err = smp.CompileQuery(dtdSource, querySpec, s.opts)
	}
	if err != nil {
		return nil, err
	}
	return s.cache.put(key, entryLabel(r, pathSpec, querySpec), pf), nil
}

// entryLabel builds the human-readable /stats identity of a cache entry.
// The cache key embeds the full DTD source; the label deliberately does not.
func entryLabel(r *http.Request, pathSpec, querySpec string) string {
	dtdID := "dtd=inline"
	if dataset := r.URL.Query().Get("dataset"); dataset != "" {
		dtdID = "dataset=" + dataset
	}
	if pathSpec != "" {
		return dtdID + " paths=" + pathSpec
	}
	return dtdID + " query=" + querySpec
}

// requestDTD resolves the DTD source of a request: either a bundled dataset
// named by ?dataset= or literal (percent-encoded) DTD text in the X-SMP-DTD
// header.
func requestDTD(r *http.Request) (string, error) {
	dataset := r.URL.Query().Get("dataset")
	header := r.Header.Get("X-SMP-DTD")
	switch {
	case dataset != "" && header != "":
		return "", fmt.Errorf("give either ?dataset= or the X-SMP-DTD header, not both")
	case dataset != "":
		return smp.DatasetDTD(smp.Dataset(dataset))
	case header != "":
		// Percent-decoding only: form decoding (QueryUnescape) would turn a
		// literal '+' — the DTD's one-or-more operator — into a space.
		src, err := url.PathUnescape(header)
		if err != nil {
			return "", fmt.Errorf("X-SMP-DTD header is not valid percent-encoded text: %v", err)
		}
		return src, nil
	default:
		return "", fmt.Errorf("missing DTD: give ?dataset=xmark|medline or the X-SMP-DTD header (percent-encoded DTD source)")
	}
}

// setStatsHeaders exposes the per-run counters as response trailers/headers.
func setStatsHeaders(h http.Header, stats smp.Stats) {
	h.Set("X-SMP-Bytes-Read", strconv.FormatInt(stats.BytesRead, 10))
	h.Set("X-SMP-Bytes-Written", strconv.FormatInt(stats.BytesWritten, 10))
	h.Set("X-SMP-Char-Comparisons", strconv.FormatInt(stats.CharComparisons, 10))
	h.Set("X-SMP-Tags-Matched", strconv.FormatInt(stats.TagsMatched, 10))
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// statsResponse is the JSON shape of /stats. CacheBytes is the summed
// eviction weight the -cachebytes budget counts (compiled plan plus cache
// key per entry); CacheEntries breaks each entry into its plan footprint —
// the shared, immutable tables its concurrent runs execute against — and
// its full weight.
type statsResponse struct {
	UptimeSeconds  float64          `json:"uptime_seconds"`
	Requests       int64            `json:"requests"`
	Failures       int64            `json:"failures"`
	IntraWorkers   int              `json:"intra_workers"`
	IntraMinBytes  int64            `json:"intra_min_bytes"`
	IntraRequests  int64            `json:"intra_requests"`
	Cancelled      int64            `json:"cancelled"`
	BytesRead      int64            `json:"bytes_read"`
	BytesWritten   int64            `json:"bytes_written"`
	CacheSize      int              `json:"cache_size"`
	CacheBytes     int64            `json:"cache_bytes"`
	CacheHits      int64            `json:"cache_hits"`
	CacheMisses    int64            `json:"cache_misses"`
	CacheEvictions int64            `json:"cache_evictions"`
	CacheEntries   []cacheEntryInfo `json:"cache_entries"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	entries, size, cacheBytes, hits, misses, evictions := s.cache.view()
	resp := statsResponse{
		UptimeSeconds:  time.Since(s.start).Seconds(),
		Requests:       s.requests.Load(),
		Failures:       s.failures.Load(),
		IntraWorkers:   s.intraWorkers,
		IntraMinBytes:  s.intraMin,
		IntraRequests:  s.intraRequests.Load(),
		Cancelled:      s.cancelled.Load(),
		BytesRead:      s.bytesRead.Load(),
		BytesWritten:   s.bytesWritten.Load(),
		CacheSize:      size,
		CacheBytes:     cacheBytes,
		CacheHits:      hits,
		CacheMisses:    misses,
		CacheEvictions: evictions,
		CacheEntries:   entries,
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("smpserve: encoding /stats: %v", err)
	}
}

// fail writes a plain-text error response and counts the failure.
func (s *server) fail(w http.ResponseWriter, code int, msg string) {
	s.failures.Add(1)
	http.Error(w, "smpserve: "+msg, code)
}
