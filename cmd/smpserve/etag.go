package main

import "strings"

// Document identity is a content hash: sha256 over the document bytes,
// spelled "sha256:<64 lowercase hex digits>". The same spelling serves as
// the coalescing key (documents with equal hashes share one batch), as the
// doc= reference into the document cache, and — quoted — as the HTTP ETag
// of an uploaded document. parseDocRef is the one parser for all three
// spellings; it is deliberately strict (exact length, lowercase canonical
// form out) because its output keys caches and batches.

const (
	hashScheme = "sha256"
	hashHexLen = 64 // sha256 → 32 bytes → 64 hex digits
)

// parseDocRef parses a document reference — "sha256:<hex>", optionally
// surrounded by ETag quotes and/or a weak-validator prefix (W/"...") — and
// returns the canonical lowercase hex digest. It accepts uppercase hex on
// input but never emits it: equal digests always produce equal keys.
func parseDocRef(s string) (string, bool) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "W/") || strings.HasPrefix(s, "w/") {
		s = s[2:]
	}
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		s = s[1 : len(s)-1]
	}
	rest, ok := strings.CutPrefix(s, hashScheme+":")
	if !ok || len(rest) != hashHexLen {
		return "", false
	}
	out := make([]byte, hashHexLen)
	for i := 0; i < hashHexLen; i++ {
		c := rest[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f':
			out[i] = c
		case c >= 'A' && c <= 'F':
			out[i] = c + ('a' - 'A')
		default:
			return "", false
		}
	}
	return string(out), true
}

// formatETag renders a canonical digest as the quoted HTTP ETag the
// /documents endpoints emit.
func formatETag(hash string) string {
	return `"` + hashScheme + ":" + hash + `"`
}

// matchesIfNoneMatch reports whether an If-None-Match header value matches
// the given canonical digest: either the wildcard "*" or any element of the
// comma-separated entity-tag list parsing to the same digest. Malformed
// elements never match — a garbled header degrades to a plain upload, never
// to a false cache hit.
func matchesIfNoneMatch(header, hash string) bool {
	header = strings.TrimSpace(header)
	if header == "" {
		return false
	}
	if header == "*" {
		return true
	}
	for _, part := range strings.Split(header, ",") {
		if h, ok := parseDocRef(part); ok && h == hash {
			return true
		}
	}
	return false
}
