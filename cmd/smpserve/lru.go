package main

import (
	"container/list"
	"sync"
)

// prefilterCache is a mutex-protected LRU of compiled artifacts — single
// prefilters keyed by the (DTD source, canonical path set) pair, and merged
// multi-query prefilters keyed by their ordered per-query sets. Compilation
// is the expensive static analysis of the paper (DTD parse, Glushkov
// automata, table and matcher construction); caching turns the service into
// compile-once, serve-many.
//
// Entries are weighed by an explicit byte footprint supplied at insertion,
// so the cache can be bounded in bytes as well as in entry count. The weight
// is merge-aware: a single prefilter weighs its whole compiled plan
// (smp.Prefilter.PlanStats), while a multi-query entry weighs only the union
// scan tables it adds on top — its per-query plans are shared with (and
// already weighed by) the individual entries the service resolves first.
type prefilterCache struct {
	mu       sync.Mutex
	capacity int
	maxBytes int64      // total weight budget; 0 = unlimited
	order    *list.List // front = most recently used; values are *cacheEntry
	entries  map[string]*list.Element

	totalBytes int64
	hits       int64
	misses     int64
	evictions  int64
}

type cacheEntry struct {
	key string
	// label is the human-readable identity of the entry (dataset/paths or
	// query), safe to expose in /stats — the key itself embeds the full DTD
	// source.
	label string
	val   any
	// planBytes is the entry's own compiled footprint (the full plan for a
	// single prefilter, the union scan tables for a merged one); weight adds
	// the key bytes (DTD source + spec) the entry pins and is what the
	// budget counts.
	planBytes int64
	weight    int64
	hits      int64
}

// cacheEntryInfo is the /stats view of one cached entry: the compiled
// footprint proper and the full eviction weight (footprint + cache key).
type cacheEntryInfo struct {
	Label       string `json:"label"`
	PlanBytes   int64  `json:"plan_bytes"`
	WeightBytes int64  `json:"weight_bytes"`
	Hits        int64  `json:"hits"`
}

// newPrefilterCache returns an LRU holding up to capacity compiled entries
// (capacity < 1 selects 1) whose footprints together stay within maxBytes (0
// disables the byte budget). The most recently used entry is never evicted,
// so a single over-budget plan still serves.
func newPrefilterCache(capacity int, maxBytes int64) *prefilterCache {
	if capacity < 1 {
		capacity = 1
	}
	return &prefilterCache{
		capacity: capacity,
		maxBytes: maxBytes,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// get returns the cached value for key and marks it most recently used.
func (c *prefilterCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	el.Value.(*cacheEntry).hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// put inserts a compiled value weighing planBytes, evicting least recently
// used entries while the cache exceeds its entry capacity or its byte
// budget. If another goroutine compiled and inserted the same key
// concurrently, the existing entry wins (both are equivalent).
func (c *prefilterCache) put(key, label string, val any, planBytes int64) any {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*cacheEntry).val
	}
	entry := &cacheEntry{
		key:       key,
		label:     label,
		val:       val,
		planBytes: planBytes,
		weight:    planBytes + int64(len(key)),
	}
	c.entries[key] = c.order.PushFront(entry)
	c.totalBytes += entry.weight
	for c.order.Len() > 1 &&
		(c.order.Len() > c.capacity || (c.maxBytes > 0 && c.totalBytes > c.maxBytes)) {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		old := oldest.Value.(*cacheEntry)
		delete(c.entries, old.key)
		c.totalBytes -= old.weight
		c.evictions++
	}
	return val
}

// counters returns the aggregate cache counters without materialising the
// per-entry list — the cheap accessor behind the scrape-time /metrics
// instruments.
func (c *prefilterCache) counters() (size int, bytes int64, hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len(), c.totalBytes, c.hits, c.misses, c.evictions
}

// view returns the per-entry footprints (most-recently-used first) together
// with the aggregate counters, all under one lock, so the totals always
// match the entry list.
func (c *prefilterCache) view() (entries []cacheEntryInfo, size int, bytes int64, hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	entries = make([]cacheEntryInfo, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		entries = append(entries, cacheEntryInfo{Label: e.label, PlanBytes: e.planBytes, WeightBytes: e.weight, Hits: e.hits})
	}
	return entries, c.order.Len(), c.totalBytes, c.hits, c.misses, c.evictions
}
