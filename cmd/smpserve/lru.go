package main

import (
	"container/list"
	"sync"

	"smp"
)

// prefilterCache is a mutex-protected LRU of compiled prefilters, keyed by
// the (DTD source, projection-path spec) pair. Compilation is the expensive
// static analysis of the paper (DTD parse, Glushkov automata, table and
// matcher construction); caching turns the service into compile-once,
// serve-many.
//
// Entries are weighed by the memory footprint of their compiled plan
// (smp.Prefilter.PlanStats), so the cache can be bounded in bytes as well as
// in entry count: a handful of huge-DTD prefilters counts like many small
// ones.
type prefilterCache struct {
	mu       sync.Mutex
	capacity int
	maxBytes int64      // total plan-byte budget; 0 = unlimited
	order    *list.List // front = most recently used; values are *cacheEntry
	entries  map[string]*list.Element

	totalBytes int64
	hits       int64
	misses     int64
	evictions  int64
}

type cacheEntry struct {
	key string
	// label is the human-readable identity of the entry (dataset/paths or
	// query), safe to expose in /stats — the key itself embeds the full DTD
	// source.
	label string
	pf    *smp.Prefilter
	// planBytes is the compiled plan's footprint; weight adds the key bytes
	// (DTD source + spec) the entry pins and is what the budget counts.
	planBytes int64
	weight    int64
	hits      int64
}

// cacheEntryInfo is the /stats view of one cached prefilter: the plan
// footprint proper and the full eviction weight (plan + cache key).
type cacheEntryInfo struct {
	Label       string `json:"label"`
	PlanBytes   int64  `json:"plan_bytes"`
	WeightBytes int64  `json:"weight_bytes"`
	Hits        int64  `json:"hits"`
}

// newPrefilterCache returns an LRU holding up to capacity compiled
// prefilters (capacity < 1 selects 1) whose plans together stay within
// maxBytes (0 disables the byte budget). The most recently used entry is
// never evicted, so a single over-budget plan still serves.
func newPrefilterCache(capacity int, maxBytes int64) *prefilterCache {
	if capacity < 1 {
		capacity = 1
	}
	return &prefilterCache{
		capacity: capacity,
		maxBytes: maxBytes,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// entryWeight is the byte weight of one cache entry: the compiled plan plus
// the key (which embeds the DTD source and path spec).
func entryWeight(key string, pf *smp.Prefilter) int64 {
	return pf.PlanStats().MemBytes + int64(len(key))
}

// get returns the cached prefilter for key and marks it most recently used.
func (c *prefilterCache) get(key string) (*smp.Prefilter, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	el.Value.(*cacheEntry).hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).pf, true
}

// put inserts a compiled prefilter, evicting least recently used entries
// while the cache exceeds its entry capacity or its byte budget. If another
// goroutine compiled and inserted the same key concurrently, the existing
// entry wins (both are equivalent).
func (c *prefilterCache) put(key, label string, pf *smp.Prefilter) *smp.Prefilter {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*cacheEntry).pf
	}
	entry := &cacheEntry{
		key:       key,
		label:     label,
		pf:        pf,
		planBytes: pf.PlanStats().MemBytes,
		weight:    entryWeight(key, pf),
	}
	c.entries[key] = c.order.PushFront(entry)
	c.totalBytes += entry.weight
	for c.order.Len() > 1 &&
		(c.order.Len() > c.capacity || (c.maxBytes > 0 && c.totalBytes > c.maxBytes)) {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		old := oldest.Value.(*cacheEntry)
		delete(c.entries, old.key)
		c.totalBytes -= old.weight
		c.evictions++
	}
	return pf
}

// view returns the per-entry footprints (most-recently-used first) together
// with the aggregate counters, all under one lock, so the totals always
// match the entry list.
func (c *prefilterCache) view() (entries []cacheEntryInfo, size int, bytes int64, hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	entries = make([]cacheEntryInfo, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		entries = append(entries, cacheEntryInfo{Label: e.label, PlanBytes: e.planBytes, WeightBytes: e.weight, Hits: e.hits})
	}
	return entries, c.order.Len(), c.totalBytes, c.hits, c.misses, c.evictions
}
