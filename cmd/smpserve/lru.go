package main

import (
	"container/list"
	"sync"

	"smp"
)

// prefilterCache is a mutex-protected LRU of compiled prefilters, keyed by
// the (DTD source, projection-path spec) pair. Compilation is the expensive
// static analysis of the paper (DTD parse, Glushkov automata, table
// construction); caching turns the service into compile-once, serve-many.
type prefilterCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; values are *cacheEntry
	entries  map[string]*list.Element

	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	key string
	pf  *smp.Prefilter
}

// newPrefilterCache returns an LRU holding up to capacity compiled
// prefilters (capacity < 1 selects 1).
func newPrefilterCache(capacity int) *prefilterCache {
	if capacity < 1 {
		capacity = 1
	}
	return &prefilterCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// get returns the cached prefilter for key and marks it most recently used.
func (c *prefilterCache) get(key string) (*smp.Prefilter, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).pf, true
}

// put inserts a compiled prefilter, evicting the least recently used entry
// when over capacity. If another goroutine compiled and inserted the same
// key concurrently, the existing entry wins (both are equivalent).
func (c *prefilterCache) put(key string, pf *smp.Prefilter) *smp.Prefilter {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*cacheEntry).pf
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, pf: pf})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
	return pf
}

// counters returns a consistent snapshot of size and hit/miss/eviction
// counts.
func (c *prefilterCache) counters() (size int, hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len(), c.hits, c.misses, c.evictions
}
