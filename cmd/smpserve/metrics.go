package main

import "sync"

// counters is the service-level counter set behind /stats. All fields are
// plain integers mutated and read only under the owning metrics mutex: a
// /stats snapshot is one consistent cut of the whole set, never a mix of
// values from before and after a concurrent request.
//
// Request counters count *completions*: a request is added to Requests (and
// at most one of Failures/Cancelled) in the same critical section that adds
// its byte counts, so invariants like Failures <= Requests and
// CoalescedRequests <= Requests hold in every snapshot. InFlight is the only
// gauge: it is incremented when a request is admitted and decremented in the
// completion record.
type counters struct {
	InFlight int64 // requests currently being served

	Requests           int64 // completed requests (all endpoints but /healthz and /stats)
	Failures           int64 // completed with an error response or aborted connection
	Cancelled          int64 // aborted because the client disconnected
	IntraRequests      int64 // served with intra-document parallelism
	MultiRequests      int64 // /multiproject requests
	MultiIntraRequests int64 // /multiproject served by the parallel K×W pipeline
	MultiQueries       int64 // queries served across /multiproject requests
	BytesRead          int64 // document bytes scanned (coalesced documents count once per batch)
	BytesWritten       int64 // projection bytes produced
	ZeroCopyRuns       int64 // projections served from a memory mapping
	IndexHits          int64 // projections replayed from a candidate index
	IndexSkips         int64 // indexed documents that fell back to scanning

	// Coalescing. CoalescedRequests counts requests that shared their batch
	// with at least one other request; Batches counts every batch run
	// (including singletons); BatchHist[bucketFor(n)] counts batches by
	// size, so the histogram always sums to CoalesceBatches. The admission
	// gauges (buffered bytes, shed count) live in the admission struct.
	CoalescedRequests int64
	CoalesceBatches   int64
	BatchHist         [len(batchBuckets)]int64
}

// batchBuckets labels the batch-size histogram: bucket i counts batches of
// size batchBuckets[i].lo..batchBuckets[i].hi.
var batchBuckets = [...]struct {
	lo, hi int
	label  string
}{
	{1, 1, "1"},
	{2, 2, "2"},
	{3, 4, "3-4"},
	{5, 8, "5-8"},
	{9, 16, "9-16"},
	{17, 1 << 30, "17+"},
}

// bucketFor maps a batch size to its histogram bucket index.
func bucketFor(size int) int {
	for i, b := range batchBuckets {
		if size >= b.lo && size <= b.hi {
			return i
		}
	}
	return len(batchBuckets) - 1
}

// metrics guards the service counters. Every mutation and every snapshot
// takes the one mutex, so /stats never observes a half-updated state. The
// lock is held only for plain integer arithmetic — never across a
// projection, a compile, or any I/O.
type metrics struct {
	mu sync.Mutex
	c  counters
}

// mutate applies f to the counter set under the lock.
func (m *metrics) mutate(f func(*counters)) {
	m.mu.Lock()
	f(&m.c)
	m.mu.Unlock()
}

// snapshot returns one consistent copy of the counter set.
func (m *metrics) snapshot() counters {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.c
}

// reqOutcome accumulates what happened to one request; the handler commits
// it exactly once on exit, as a single consistent counter update.
type reqOutcome struct {
	failed       bool
	cancelled    bool
	intra        bool
	multi        bool
	multiIntra   bool
	queries      int64
	coalesced    bool // shared a batch with at least one other request
	zeroCopy     bool
	bytesRead    int64
	bytesWritten int64
	indexHits    int64
	indexSkips   int64
}

// finish commits a request outcome. It is the only place a request reaches
// the Requests counter, so every handler exit path records exactly one
// completion.
func (s *server) finish(o *reqOutcome) {
	s.metrics.mutate(func(c *counters) {
		c.InFlight--
		c.Requests++
		if o.failed {
			c.Failures++
		}
		if o.cancelled {
			c.Cancelled++
		}
		if o.intra {
			c.IntraRequests++
		}
		if o.multi {
			c.MultiRequests++
			c.MultiQueries += o.queries
		}
		if o.multiIntra {
			c.MultiIntraRequests++
		}
		if o.coalesced {
			c.CoalescedRequests++
		}
		if o.zeroCopy {
			c.ZeroCopyRuns++
		}
		c.BytesRead += o.bytesRead
		c.BytesWritten += o.bytesWritten
		c.IndexHits += o.indexHits
		c.IndexSkips += o.indexSkips
	})
}
