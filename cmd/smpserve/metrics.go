package main

import (
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"runtime/debug"
	"time"

	"smp/internal/obs"
)

// The service telemetry is one obs.Registry serving two views: GET /metrics
// renders it in Prometheus text exposition format, and /stats renders the
// same instruments as the legacy JSON snapshot — both are consistent cuts
// of the same registry, so the two endpoints reconcile by construction.
//
// Request-lifecycle counters are committed once per request in finish(),
// inside one registry Commit group, so invariants like
// Failures <= Requests and "the batch histogram sums to CoalesceBatches"
// hold in every scrape. Subsystems that keep their own locked counters (the
// prefilter LRU, the document cache, admission control) surface through
// func-backed instruments read at scrape time — no double bookkeeping, no
// drift between /stats and /metrics.

// counters is the legacy /stats counter view, now assembled from the
// registry by snapshot(). The field set (and the BatchHist bucketing) is
// part of the /stats compatibility surface.
type counters struct {
	InFlight int64 // requests currently being served

	Requests           int64 // completed requests (all endpoints but /healthz, /stats, /metrics)
	Failures           int64 // completed with an error response or aborted connection
	Cancelled          int64 // aborted because the client disconnected
	IntraRequests      int64 // served with intra-document parallelism
	MultiRequests      int64 // /multiproject requests
	MultiIntraRequests int64 // /multiproject served by the parallel K×W pipeline
	MultiQueries       int64 // queries served across /multiproject requests
	BytesRead          int64 // document bytes scanned (coalesced documents count once per batch)
	BytesWritten       int64 // projection bytes produced
	ZeroCopyRuns       int64 // projections served from a memory mapping
	IndexHits          int64 // projections replayed from a candidate index
	IndexSkips         int64 // indexed documents that fell back to scanning
	IndexSummarySkips  int64 // index hits proven empty by the vocabulary summary

	CoalescedRequests int64
	CoalesceBatches   int64
	BatchHist         [len(batchBuckets)]int64
}

// batchBuckets labels the batch-size histogram for the /stats JSON view:
// bucket i counts batches of size batchBuckets[i].lo..batchBuckets[i].hi.
// The underlying histogram's upper bounds (batchBounds) coincide with the
// his of these ranges, so one instrument serves both the /stats label map
// and the /metrics le-bucketed exposition.
var batchBuckets = [...]struct {
	lo, hi int
	label  string
}{
	{1, 1, "1"},
	{2, 2, "2"},
	{3, 4, "3-4"},
	{5, 8, "5-8"},
	{9, 16, "9-16"},
	{17, 1 << 30, "17+"},
}

// batchBounds are the finite le bounds of the coalesce batch-size
// histogram; the implicit +Inf bucket is batchBuckets' trailing "17+".
var batchBounds = []float64{1, 2, 4, 8, 16}

// bucketFor maps a batch size to its histogram bucket index.
func bucketFor(size int) int {
	for i, b := range batchBuckets {
		if size >= b.lo && size <= b.hi {
			return i
		}
	}
	return len(batchBuckets) - 1
}

// endpoints instrumented with per-endpoint request counters and latency
// histograms. latencyBounds span sub-millisecond cache hits to multi-second
// scans of large documents.
var (
	endpoints     = []string{"/project", "/multiproject", "/documents", "/healthz", "/stats", "/metrics"}
	latencyBounds = obs.ExpBuckets(0.0005, 4, 8) // 0.5ms .. ~8s
)

// metrics is the service's instrument set over one obs.Registry.
type metrics struct {
	reg *obs.Registry

	inFlight  *obs.Gauge
	requests  *obs.Counter
	failures  *obs.Counter
	cancelled *obs.Counter

	intraRequests      *obs.Counter
	multiRequests      *obs.Counter
	multiIntraRequests *obs.Counter
	multiQueries       *obs.Counter

	bytesRead    *obs.Counter
	bytesWritten *obs.Counter
	zeroCopyRuns *obs.Counter

	indexHits         *obs.Counter
	indexSkips        *obs.Counter
	indexSummarySkips *obs.Counter

	coalescedRequests *obs.Counter
	coalesceBatches   *obs.Histogram // one observation per batch, value = batch size

	httpRequests map[string]*obs.Counter
	httpLatency  map[string]*obs.Histogram
}

// newMetrics wires every instrument into a fresh registry. The func-backed
// instruments close over the server and read the subsystem counters (under
// their own locks) at scrape time, so /metrics and /stats always report the
// caches' and admission control's one source of truth.
func newMetrics(s *server) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		reg:       reg,
		inFlight:  reg.Gauge("smpserve_requests_in_flight", "Requests currently being served."),
		requests:  reg.Counter("smpserve_requests_total", "Completed requests across the projection and document endpoints."),
		failures:  reg.Counter("smpserve_request_failures_total", "Requests completed with an error response or an aborted connection."),
		cancelled: reg.Counter("smpserve_requests_cancelled_total", "Requests aborted because the client disconnected."),

		intraRequests:      reg.Counter("smpserve_intra_requests_total", "Requests served with intra-document parallelism."),
		multiRequests:      reg.Counter("smpserve_multi_requests_total", "/multiproject requests."),
		multiIntraRequests: reg.Counter("smpserve_multi_intra_requests_total", "/multiproject requests served by the parallel KxW pipeline."),
		multiQueries:       reg.Counter("smpserve_multi_queries_total", "Queries served across /multiproject requests."),

		bytesRead:    reg.Counter("smpserve_document_bytes_read_total", "Document bytes scanned (coalesced documents count once per batch)."),
		bytesWritten: reg.Counter("smpserve_projection_bytes_written_total", "Projection bytes written to responses."),
		zeroCopyRuns: reg.Counter("smpserve_zero_copy_runs_total", "Projections served from a memory mapping instead of a heap buffer."),

		indexHits:         reg.Counter("smpserve_index_hits_total", "Projections replayed from a persisted candidate index."),
		indexSkips:        reg.Counter("smpserve_index_skips_total", "Indexed documents that fell back to scanning."),
		indexSummarySkips: reg.Counter("smpserve_index_summary_skips_total", "Index replays proven empty by the per-document vocabulary summary."),

		coalescedRequests: reg.Counter("smpserve_coalesced_requests_total", "Requests that shared a coalesced batch with at least one other request."),
		coalesceBatches:   reg.Histogram("smpserve_coalesce_batch_size", "Coalesced batch sizes (one observation per batch, including singletons).", batchBounds),

		httpRequests: make(map[string]*obs.Counter, len(endpoints)),
		httpLatency:  make(map[string]*obs.Histogram, len(endpoints)),
	}
	for _, ep := range endpoints {
		l := obs.Label{Key: "endpoint", Value: ep}
		m.httpRequests[ep] = reg.Counter("smpserve_http_requests_total", "HTTP requests by endpoint.", l)
		m.httpLatency[ep] = reg.Histogram("smpserve_http_request_seconds", "HTTP request latency in seconds by endpoint.", latencyBounds, l)
	}

	reg.GaugeFunc("smpserve_uptime_seconds", "Seconds since the server started.",
		func() int64 { return int64(time.Since(s.start).Seconds()) })

	// Prefilter LRU: the compiled-plan cache behind every endpoint.
	reg.GaugeFunc("smpserve_plan_cache_entries", "Compiled prefilters in the LRU cache.",
		func() int64 { size, _, _, _, _ := s.cache.counters(); return int64(size) })
	reg.GaugeFunc("smpserve_plan_cache_bytes", "Eviction weight of the cached compiled plans.",
		func() int64 { _, b, _, _, _ := s.cache.counters(); return b })
	reg.CounterFunc("smpserve_plan_cache_hits_total", "Prefilter cache hits.",
		func() int64 { _, _, h, _, _ := s.cache.counters(); return h })
	reg.CounterFunc("smpserve_plan_cache_misses_total", "Prefilter cache misses.",
		func() int64 { _, _, _, mi, _ := s.cache.counters(); return mi })
	reg.CounterFunc("smpserve_plan_cache_evictions_total", "Prefilter cache evictions.",
		func() int64 { _, _, _, _, e := s.cache.counters(); return e })

	// Content-addressed document cache (zero when disabled).
	reg.GaugeFunc("smpserve_doc_cache_docs", "Documents in the content-addressed cache.",
		func() int64 { return int64(s.docs.stats().Docs) })
	reg.GaugeFunc("smpserve_doc_cache_bytes", "Bytes held by the document cache.",
		func() int64 { return s.docs.stats().Bytes })
	reg.CounterFunc("smpserve_doc_cache_hits_total", "Document cache hits.",
		func() int64 { return s.docs.stats().Hits })
	reg.CounterFunc("smpserve_doc_cache_misses_total", "Document cache misses.",
		func() int64 { return s.docs.stats().Misses })
	reg.CounterFunc("smpserve_doc_cache_evictions_total", "Document cache evictions.",
		func() int64 { return s.docs.stats().Evictions })

	// Admission control: buffered-byte budget and load shedding.
	reg.GaugeFunc("smpserve_buffered_bytes", "Request bytes currently buffered under the admission budget.",
		func() int64 { b, _ := s.adm.view(); return b })
	reg.CounterFunc("smpserve_shed_requests_total", "Requests shed with 429 because the buffered-byte budget was exhausted.",
		func() int64 { _, sh := s.adm.view(); return sh })

	reg.Gauge("smpserve_build_info", "Build metadata; the value is always 1.", buildInfoLabels()...).Set(1)
	return m
}

// buildInfoLabels extracts module version, VCS revision and Go version from
// the binary's embedded build information.
func buildInfoLabels() []obs.Label {
	goVersion, modVersion, revision := buildInfo()
	return []obs.Label{
		{Key: "goversion", Value: goVersion},
		{Key: "version", Value: modVersion},
		{Key: "revision", Value: revision},
	}
}

// buildInfo reads the binary's build metadata (best effort: "unknown" where
// the build did not embed it, e.g. revision outside a VCS checkout).
func buildInfo() (goVersion, modVersion, revision string) {
	goVersion, modVersion, revision = "unknown", "unknown", "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return
	}
	goVersion = bi.GoVersion
	if bi.Main.Version != "" {
		modVersion = bi.Main.Version
	}
	for _, kv := range bi.Settings {
		if kv.Key == "vcs.revision" {
			revision = kv.Value
		}
	}
	return
}

// snapshot returns one consistent copy of the request-lifecycle counters,
// taken as a single registry cut — the same consistency the old mutex-held
// counter struct gave /stats.
func (m *metrics) snapshot() counters {
	var c counters
	m.reg.Read(func() {
		c.InFlight = m.inFlight.Value()
		c.Requests = m.requests.Value()
		c.Failures = m.failures.Value()
		c.Cancelled = m.cancelled.Value()
		c.IntraRequests = m.intraRequests.Value()
		c.MultiRequests = m.multiRequests.Value()
		c.MultiIntraRequests = m.multiIntraRequests.Value()
		c.MultiQueries = m.multiQueries.Value()
		c.BytesRead = m.bytesRead.Value()
		c.BytesWritten = m.bytesWritten.Value()
		c.ZeroCopyRuns = m.zeroCopyRuns.Value()
		c.IndexHits = m.indexHits.Value()
		c.IndexSkips = m.indexSkips.Value()
		c.IndexSummarySkips = m.indexSummarySkips.Value()
		c.CoalescedRequests = m.coalescedRequests.Value()
		counts := m.coalesceBatches.Counts()
		for i := range c.BatchHist {
			c.BatchHist[i] = counts[i]
		}
		c.CoalesceBatches = m.coalesceBatches.Count()
	})
	return c
}

// reqOutcome accumulates what happened to one request; the handler commits
// it exactly once on exit, as a single consistent counter update.
type reqOutcome struct {
	failed            bool
	cancelled         bool
	intra             bool
	multi             bool
	multiIntra        bool
	queries           int64
	coalesced         bool // shared a batch with at least one other request
	zeroCopy          bool
	bytesRead         int64
	bytesWritten      int64
	indexHits         int64
	indexSkips        int64
	indexSummarySkips int64
}

// finish commits a request outcome in one registry Commit group. It is the
// only place a request reaches the Requests counter, so every handler exit
// path records exactly one completion and every scrape sees the outcome
// entirely or not at all.
func (s *server) finish(o *reqOutcome) {
	m := s.metrics
	m.reg.Commit(func() {
		m.inFlight.Add(-1)
		m.requests.Inc()
		if o.failed {
			m.failures.Inc()
		}
		if o.cancelled {
			m.cancelled.Inc()
		}
		if o.intra {
			m.intraRequests.Inc()
		}
		if o.multi {
			m.multiRequests.Inc()
			m.multiQueries.Add(o.queries)
		}
		if o.multiIntra {
			m.multiIntraRequests.Inc()
		}
		if o.coalesced {
			m.coalescedRequests.Inc()
		}
		if o.zeroCopy {
			m.zeroCopyRuns.Inc()
		}
		m.bytesRead.Add(o.bytesRead)
		m.bytesWritten.Add(o.bytesWritten)
		m.indexHits.Add(o.indexHits)
		m.indexSkips.Add(o.indexSkips)
		m.indexSummarySkips.Add(o.indexSummarySkips)
	})
}

// handleMetrics serves the Prometheus text exposition of the registry.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.metrics.reg.WritePrometheus(w); err != nil {
		s.log.Error("writing /metrics exposition", "err", err)
	}
}

// statusRecorder captures the response status and body size for the
// request log and the per-endpoint instruments. Unwrap exposes the
// underlying writer to http.ResponseController (flush, deadlines).
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	n, err := sr.ResponseWriter.Write(p)
	sr.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so streamed projections keep
// their flush behavior through the instrumentation wrapper.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (sr *statusRecorder) Unwrap() http.ResponseWriter { return sr.ResponseWriter }

// instrument wraps a handler with the per-endpoint request counter, the
// latency histogram and the structured request log line. The deferred
// observation also runs when the handler panics with http.ErrAbortHandler
// (the mid-stream failure path), recording the aborted request before the
// panic unwinds into net/http.
func (s *server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	reqs := s.metrics.httpRequests[endpoint]
	lat := s.metrics.httpLatency[endpoint]
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sr := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		defer func() {
			dur := time.Since(start)
			s.metrics.reg.Commit(func() {
				reqs.Inc()
				lat.Observe(dur.Seconds())
			})
			status := sr.status
			if status == 0 {
				status = http.StatusOK
			}
			attrs := []any{
				"method", r.Method,
				"path", r.URL.Path,
				"status", status,
				"bytes", sr.bytes,
				"duration", dur,
			}
			if batch := sr.Header().Get("X-SMP-Coalesced-Batch"); batch != "" {
				attrs = append(attrs, "coalesce_batch", batch)
			}
			switch {
			case s.slowLog > 0 && dur >= s.slowLog:
				s.log.Warn("slow request", attrs...)
			default:
				s.log.Info("request", attrs...)
			}
		}()
		h(sr, r)
	})
}

// newLogger builds the service logger: -logformat selects text or JSON
// handlers, both writing structured key/value lines to stderr.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text", "":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -logformat %q (want text or json)", format)
	}
}
