package main

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"

	"smp"
	"smp/internal/mmapio"
)

// docCache is the content-addressed document store: documents keyed by
// their sha256 digest, held as read-only memory mappings of files in a
// spool directory so hot documents are scanned straight out of the page
// cache instead of re-uploaded — the byte cost of a cached hit is the scan
// itself, not the network or the Go heap. Where the platform cannot map
// (see internal/mmapio), entries degrade to plain heap copies; the cache
// works identically either way.
//
// Eviction is LRU by total bytes. An entry can be evicted while a batch is
// still scanning it, so entries are refcounted: eviction marks the entry
// dead and the last release unmaps and deletes the spool file. Callers must
// pair every acquire (get/put) with exactly one release.
type docCache struct {
	mu       sync.Mutex
	dir      string
	maxBytes int64 // total byte budget; <= 0 disables the cache

	order   *list.List // front = most recently used; values are *docEntry
	entries map[string]*list.Element
	total   int64

	hits, misses, stores, evictions int64
}

// docEntry is one cached document. data aliases the mapping when mapped,
// or is a private heap copy otherwise. indexes holds the document's
// candidate indexes, one per query-vocabulary fingerprint (guarded by the
// cache mutex, bounded by maxDocIndexes): scan the document once per
// vocabulary, replay the stored candidates on every later projection.
type docEntry struct {
	hash    string
	data    []byte
	mapping *mmapio.Mapping // nil for heap-backed entries
	path    string          // spool file; removed when the entry dies
	refs    int
	dead    bool
	indexes map[uint64]*smp.Index
}

// maxDocIndexes bounds the candidate indexes cached per document: one per
// distinct query-vocabulary fingerprint. Beyond the cap new vocabularies
// simply scan — bounded memory and spool-dir growth beat marginal hits.
const maxDocIndexes = 8

// docCacheStats is the /stats view of the document cache, taken in one cut
// under the cache lock.
type docCacheStats struct {
	Docs      int   `json:"docs"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
	Mapped    int   `json:"mapped"`
	Indexes   int   `json:"indexes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Stores    int64 `json:"stores"`
	Evictions int64 `json:"evictions"`
}

func newDocCache(dir string, maxBytes int64) *docCache {
	return &docCache{
		dir:      dir,
		maxBytes: maxBytes,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

func (dc *docCache) enabled() bool { return dc != nil && dc.maxBytes > 0 }

// hashBytes returns the canonical digest of a document.
func hashBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// get acquires the cached document for a digest; the caller owns one
// reference and must release it. The entry's bytes stay valid until then,
// even if the entry is evicted in the meantime.
func (dc *docCache) get(hash string) (*docEntry, bool) {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	el, ok := dc.entries[hash]
	if !ok {
		dc.misses++
		return nil, false
	}
	dc.hits++
	dc.order.MoveToFront(el)
	e := el.Value.(*docEntry)
	e.refs++
	return e, true
}

// put stores a document under its digest and acquires it for the caller
// (one release owed, same as get). Storing an already-cached digest is a
// hit: the existing entry is returned and the new bytes are dropped. The
// cache takes no ownership of data — it spools it to a file and maps that,
// or keeps a private copy where mapping is unsupported.
func (dc *docCache) put(hash string, data []byte) (*docEntry, error) {
	dc.mu.Lock()
	if el, ok := dc.entries[hash]; ok {
		dc.order.MoveToFront(el)
		e := el.Value.(*docEntry)
		e.refs++
		dc.hits++
		dc.mu.Unlock()
		return e, nil
	}
	dc.mu.Unlock()

	// Spool and map outside the lock: a slow disk must not stall readers.
	// Two concurrent uploads of the same content may both spool; the second
	// insert loses and destroys its spare below.
	e, err := dc.spool(hash, data)
	if err != nil {
		return nil, err
	}

	dc.mu.Lock()
	if el, ok := dc.entries[hash]; ok {
		existing := el.Value.(*docEntry)
		existing.refs++
		dc.order.MoveToFront(el)
		dc.hits++
		dc.mu.Unlock()
		e.destroy()
		return existing, nil
	}
	e.refs = 1
	dc.entries[hash] = dc.order.PushFront(e)
	dc.total += int64(len(e.data))
	dc.stores++
	victims := dc.evictLocked()
	dc.mu.Unlock()
	for _, v := range victims {
		v.destroy()
	}
	return e, nil
}

// spool writes the document to the cache directory and maps it read-only,
// falling back to a heap copy when the platform cannot map. The spool file
// is written to a temp name first and renamed, so a crashed upload never
// leaves a half-written document under a valid digest name.
func (dc *docCache) spool(hash string, data []byte) (*docEntry, error) {
	path := filepath.Join(dc.dir, hash+".xml")
	tmp, err := os.CreateTemp(dc.dir, "spool-*")
	if err != nil {
		return nil, fmt.Errorf("spooling document: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("spooling document: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("spooling document: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("spooling document: %w", err)
	}
	e := &docEntry{hash: hash, path: path}
	f, err := os.Open(path)
	if err == nil {
		m, merr := mmapio.Map(f)
		f.Close()
		if merr == nil {
			// Verify the mapping before anyone scans it: a spool file
			// truncated or corrupted underfoot (full disk, operator rm)
			// must fail the upload cleanly, never serve partial bytes.
			if len(m.Bytes()) == len(data) && hashBytes(m.Bytes()) == hash {
				e.mapping, e.data = m, m.Bytes()
				return e, nil
			}
			m.Close()
			os.Remove(path)
			return nil, fmt.Errorf("spooled document %s: content mismatch after spooling", hash[:12])
		}
	}
	// No mapping support (or the reopen failed): keep a private heap copy.
	e.data = append([]byte(nil), data...)
	return e, nil
}

// sidecarPath is where a document's candidate index for one vocabulary
// fingerprint persists: <hash>.<fp as 16 hex digits>.smpidx next to the
// spool file, so a warm restart finds both together.
func (dc *docCache) sidecarPath(hash string, fp uint64) string {
	return filepath.Join(dc.dir, fmt.Sprintf("%s.%016x%s", hash, fp, smp.IndexSidecarExt))
}

// index returns the cached candidate index of an entry for one vocabulary
// fingerprint, plus whether a miss may be admitted (the entry is alive and
// under its index cap).
func (dc *docCache) index(e *docEntry, fp uint64) (ix *smp.Index, admittable bool) {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	if ix, ok := e.indexes[fp]; ok {
		return ix, false
	}
	return nil, !e.dead && len(e.indexes) < maxDocIndexes
}

// admitIndex caches a candidate index on its entry. It reports false when
// the entry died or filled its cap in the meantime — the caller then serves
// this one run from ix and removes any sidecar it just wrote.
func (dc *docCache) admitIndex(e *docEntry, fp uint64, ix *smp.Index) bool {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	if e.dead {
		return false
	}
	if _, ok := e.indexes[fp]; ok {
		return true // a concurrent builder won; both indexes are equivalent
	}
	if len(e.indexes) >= maxDocIndexes {
		return false
	}
	if e.indexes == nil {
		e.indexes = make(map[uint64]*smp.Index)
	}
	e.indexes[fp] = ix
	return true
}

// release drops one reference. The last release of a dead (evicted) entry
// unmaps and removes its spool file.
func (dc *docCache) release(e *docEntry) {
	if e == nil {
		return
	}
	dc.mu.Lock()
	e.refs--
	destroy := e.dead && e.refs == 0
	dc.mu.Unlock()
	if destroy {
		e.destroy()
	}
}

// evictLocked trims the cache to its byte budget, never evicting the most
// recently used entry (a single over-budget document still serves). Evicted
// entries still referenced by an in-flight scan are only marked dead — the
// last release destroys them; unreferenced victims are returned for the
// caller to destroy once the lock is dropped.
func (dc *docCache) evictLocked() (victims []*docEntry) {
	for dc.order.Len() > 1 && dc.total > dc.maxBytes {
		oldest := dc.order.Back()
		dc.order.Remove(oldest)
		e := oldest.Value.(*docEntry)
		delete(dc.entries, e.hash)
		dc.total -= int64(len(e.data))
		dc.evictions++
		e.dead = true
		if e.refs == 0 {
			victims = append(victims, e)
		}
	}
	return victims
}

// destroy unmaps the entry and removes its spool file plus every index
// sidecar persisted for it (named <hash>.<fp>.smpidx next to the spool
// file, so a glob finds sidecars from earlier processes too). Only called
// once: either by the losing inserter, by eviction (refs == 0), or by the
// last release of a dead entry.
func (e *docEntry) destroy() {
	if e.mapping != nil {
		e.mapping.Close()
		e.mapping = nil
	}
	e.data = nil
	e.indexes = nil
	if e.path != "" {
		os.Remove(e.path)
		if base, ok := strings.CutSuffix(e.path, ".xml"); ok {
			if sidecars, err := filepath.Glob(base + ".*" + smp.IndexSidecarExt); err == nil {
				for _, sc := range sidecars {
					os.Remove(sc)
				}
			}
		}
	}
}

// spoolDocName matches the spool file of one cached document: its sha256
// digest plus ".xml", exactly as spool names them.
var spoolDocName = regexp.MustCompile(`^[0-9a-f]{64}\.xml$`)

// warmRestart re-admits the documents a previous process spooled into a
// persistent cache directory: every <digest>.xml file whose content still
// hashes to its name is adopted in place (memory-mapped when possible) —
// its persisted index sidecars load lazily on the first projection that
// wants them, exactly as they were written. Files whose digest no longer
// matches (truncated, mutated underfoot) are removed along with their
// sidecars, as are sidecars whose document is gone: the directory again
// holds only verified content-addressed state. Returns the number of
// documents restored. Call before serving; warmRestart takes the cache
// lock per insertion but verification runs unlocked.
func (dc *docCache) warmRestart() (restored int) {
	dirents, err := os.ReadDir(dc.dir)
	if err != nil {
		return 0
	}
	valid := make(map[string]bool)
	for _, de := range dirents {
		name := de.Name()
		if !de.Type().IsRegular() || !spoolDocName.MatchString(name) {
			continue
		}
		hash := strings.TrimSuffix(name, ".xml")
		path := filepath.Join(dc.dir, name)
		e, ok := dc.adopt(hash, path)
		if !ok {
			e = &docEntry{hash: hash, path: path}
			e.destroy() // digest mismatch: drop the file and its sidecars
			continue
		}
		valid[hash] = true
		dc.mu.Lock()
		if _, dup := dc.entries[hash]; dup {
			dc.mu.Unlock()
			e.path = "" // the live entry owns the spool file
			e.destroy()
			continue
		}
		dc.entries[hash] = dc.order.PushBack(e) // restored docs start cold
		dc.total += int64(len(e.data))
		dc.stores++
		restored++
		victims := dc.evictLocked()
		dc.mu.Unlock()
		for _, v := range victims {
			if v.hash != "" {
				delete(valid, v.hash)
			}
			v.destroy()
			if v == e {
				restored--
			}
		}
	}
	// Orphaned sidecars — their document was removed, evicted or never
	// verified — would otherwise accumulate across restarts.
	for _, de := range dirents {
		name := de.Name()
		if !strings.HasSuffix(name, smp.IndexSidecarExt) {
			continue
		}
		if hash, _, ok := strings.Cut(name, "."); !ok || !valid[hash] {
			os.Remove(filepath.Join(dc.dir, name))
		}
	}
	return restored
}

// adopt builds a docEntry over an existing spool file, verifying that its
// bytes still hash to the expected digest (mapped in place when possible, a
// heap copy otherwise — the same degradation spool applies).
func (dc *docCache) adopt(hash, path string) (*docEntry, bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false
	}
	e := &docEntry{hash: hash, path: path}
	if m, err := mmapio.Map(f); err == nil {
		f.Close()
		if hashBytes(m.Bytes()) != hash {
			m.Close()
			return nil, false
		}
		e.mapping, e.data = m, m.Bytes()
		return e, true
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil || hashBytes(data) != hash {
		return nil, false
	}
	e.data = data
	return e, true
}

// stats returns one consistent cut of the cache counters.
func (dc *docCache) stats() docCacheStats {
	if dc == nil {
		return docCacheStats{}
	}
	dc.mu.Lock()
	defer dc.mu.Unlock()
	st := docCacheStats{
		Docs:      dc.order.Len(),
		Bytes:     dc.total,
		MaxBytes:  dc.maxBytes,
		Hits:      dc.hits,
		Misses:    dc.misses,
		Stores:    dc.stores,
		Evictions: dc.evictions,
	}
	for el := dc.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*docEntry)
		if e.mapping != nil {
			st.Mapped++
		}
		st.Indexes += len(e.indexes)
	}
	return st
}

// indexBuilder is the slice of the public API both *smp.Prefilter and
// *smp.MultiPrefilter offer for index serving: the vocabulary identity, the
// coverage check, and the build.
type indexBuilder interface {
	VocabularyFingerprint() uint64
	IndexCovers(*smp.Index) bool
	BuildIndex([]byte) *smp.Index
}

// docIndex resolves the candidate index serving one (cached document,
// query vocabulary) pair: the entry's in-memory map first, then a sidecar
// persisted in the spool directory (by this process or a previous one — the
// -doccachedir warm-restart path), and finally a fresh build, persisted and
// admitted for every later projection. Returns nil when the entry is at its
// index cap (the run then scans; the caller counts an index skip). The
// caller must hold a reference on e for the duration.
func (s *server) docIndex(e *docEntry, eng indexBuilder) *smp.Index {
	fp := eng.VocabularyFingerprint()
	ix, admittable := s.docs.index(e, fp)
	if ix != nil {
		return ix
	}
	if !admittable {
		return nil
	}
	path := s.docs.sidecarPath(e.hash, fp)
	if loaded, err := smp.ReadIndex(path); err == nil &&
		loaded.Bind(e.data) == nil && eng.IndexCovers(loaded) {
		// A decoded sidecar that fails any check — corrupt bytes, content
		// mismatch, foreign vocabulary — falls through to a rebuild, which
		// atomically replaces it.
		if s.docs.admitIndex(e, fp, loaded) {
			return loaded
		}
		return loaded // entry died or filled up mid-load: serve this run only
	}
	ix = eng.BuildIndex(e.data)
	persisted := ix.WriteFile(path) == nil
	if !s.docs.admitIndex(e, fp, ix) && persisted {
		os.Remove(path) // the entry died underfoot; don't leak the sidecar
	}
	return ix
}

// admission is the in-flight byte budget: every request that buffers its
// body (coalescing, /documents uploads) reserves the bytes first and
// releases them when the buffer dies. When the budget is exhausted the
// request is shed with 429 + Retry-After instead of growing the heap — the
// server degrades by refusing work it cannot hold, never by falling over.
type admission struct {
	mu       sync.Mutex
	max      int64 // <= 0: unlimited
	reserved int64
	shed     int64
}

// reserve claims n buffered bytes; it reports false (and counts a shed
// request) when the claim would exceed the budget.
func (a *admission) reserve(n int64) bool {
	if a.max <= 0 {
		return true
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.reserved+n > a.max {
		a.shed++
		return false
	}
	a.reserved += n
	return true
}

// tryReserve claims n buffered bytes like reserve but without counting a
// shed request on refusal — for opportunistic buffering that degrades to
// streaming instead of refusing the request.
func (a *admission) tryReserve(n int64) bool {
	if a.max <= 0 {
		return true
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.reserved+n > a.max {
		return false
	}
	a.reserved += n
	return true
}

// release returns n reserved bytes to the budget.
func (a *admission) release(n int64) {
	if a.max <= 0 {
		return
	}
	a.mu.Lock()
	a.reserved -= n
	a.mu.Unlock()
}

// view returns the current gauge and shed count in one cut.
func (a *admission) view() (reserved, shed int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.reserved, a.shed
}

// hashReader computes the canonical digest of a stream.
func hashReader(r io.Reader) (string, error) {
	h := sha256.New()
	if _, err := io.Copy(h, r); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// hashFile computes the digest of an open file without copying where the
// platform allows: the file is memory-mapped (internal/mmapio) and hashed
// in place, falling back to a streaming read. The file offset is left
// unchanged either way, so the caller can still project the same handle.
func hashFile(f *os.File) (string, error) {
	if m, err := mmapio.Map(f); err == nil {
		defer m.Close()
		return hashBytes(m.Bytes()), nil
	}
	off, err := f.Seek(0, io.SeekCurrent)
	if err != nil {
		return "", err
	}
	hash, err := hashReader(f)
	if err != nil {
		return "", err
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return "", err
	}
	return hash, nil
}
