package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"smp"
)

// coalescingServer builds a test server with the coalescer, the document
// cache and the admission budget all enabled. The window is generous (the
// tests synchronize on concurrency, not on wall-clock) and fires early at
// maxBatch.
func coalescingServer(t *testing.T, window time.Duration, maxBatch int) (*server, *httptest.Server) {
	t.Helper()
	srv := newServer(16, 0, smp.Options{})
	srv.coal = newCoalescer(srv, window, maxBatch)
	srv.docs = newDocCache(t.TempDir(), 64<<20)
	srv.adm.max = 64 << 20
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return srv, ts
}

func projectURL(ts *httptest.Server, spec string, extra string) string {
	u := ts.URL + "/project?paths=" + url.QueryEscape(spec)
	if extra != "" {
		u += "&" + extra
	}
	return u
}

func doProject(t *testing.T, ts *httptest.Server, spec, extra, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, projectURL(ts, spec, extra), strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-SMP-DTD", url.PathEscape(auctionDTD))
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestCoalescingByteIdentity launches a burst of concurrent requests for
// the same document body and checks that (a) they were actually coalesced
// into shared batches and (b) every response is byte-identical to the
// standalone Project output for its path set — the core contract.
func TestCoalescingByteIdentity(t *testing.T) {
	srv, ts := coalescingServer(t, 50*time.Millisecond, 64)

	specs := []string{
		"/*, //australia//name#",
		"//item/description#",
		"/*, //australia//name#", // duplicate of spec 0: shares a query slot
		"//regions//location#",
	}
	// Reference outputs via the standalone library path.
	want := make(map[string]string)
	for _, spec := range specs {
		pf, err := smp.Compile(auctionDTD, spec, smp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := pf.Project(context.Background(), &buf, strings.NewReader(auctionDoc)); err != nil {
			t.Fatal(err)
		}
		want[spec] = buf.String()
	}

	const perSpec = 4
	var wg sync.WaitGroup
	errs := make(chan error, len(specs)*perSpec)
	for _, spec := range specs {
		for i := 0; i < perSpec; i++ {
			wg.Add(1)
			go func(spec string) {
				defer wg.Done()
				resp, out := doProject(t, ts, spec, "", auctionDoc)
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("spec %q: status %d: %s", spec, resp.StatusCode, out)
					return
				}
				if string(out) != want[spec] {
					errs <- fmt.Errorf("spec %q: coalesced output diverges:\n got %q\nwant %q", spec, out, want[spec])
				}
			}(spec)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	c := srv.metrics.snapshot()
	if c.CoalesceBatches == 0 {
		t.Fatal("no coalesce batches ran")
	}
	if c.CoalescedRequests == 0 {
		t.Error("no request was marked coalesced despite the concurrent burst")
	}
	var histSum int64
	for _, n := range c.BatchHist {
		histSum += n
	}
	if histSum != c.CoalesceBatches {
		t.Errorf("batch histogram sums to %d, want CoalesceBatches = %d", histSum, c.CoalesceBatches)
	}
}

// TestCoalescingOptOut checks that ?coalesce=off bypasses the coalescer —
// the knob the load harness uses to compare on/off against one server.
func TestCoalescingOptOut(t *testing.T) {
	srv, ts := coalescingServer(t, 50*time.Millisecond, 64)
	resp, out := doProject(t, ts, "/*, //australia//name#", "coalesce=off", auctionDoc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	if got := resp.Header.Get("X-SMP-Coalesced-Batch"); got != "" {
		t.Errorf("coalesce=off still went through the coalescer (batch header %q)", got)
	}
	if c := srv.metrics.snapshot(); c.CoalesceBatches != 0 {
		t.Errorf("CoalesceBatches = %d after an opted-out request, want 0", c.CoalesceBatches)
	}
}

// TestCoalescedErrorIsolation runs a syntactically-broken request (its
// spec does not parse) concurrently with a healthy same-document request:
// the broken one gets its clean 400, the healthy one gets its bytes. A
// non-conforming document, in turn, fails its own batch with a clean 422
// (buffered outputs — no mid-stream connection cut) without disturbing
// batches for other documents.
func TestCoalescedErrorIsolation(t *testing.T) {
	_, ts := coalescingServer(t, 100*time.Millisecond, 64)

	var wg sync.WaitGroup
	type result struct {
		code int
		body string
	}
	results := make([]result, 3)
	wg.Add(3)
	go func() {
		defer wg.Done()
		resp, out := doProject(t, ts, "/*, //australia//name#", "", auctionDoc)
		results[0] = result{resp.StatusCode, string(out)}
	}()
	go func() {
		defer wg.Done()
		resp, out := doProject(t, ts, "//item[", "", auctionDoc)
		results[1] = result{resp.StatusCode, string(out)}
	}()
	go func() {
		defer wg.Done()
		// A document that does not conform to the DTD: the prefilter is
		// content-lenient (it filters, it does not validate), so this is a
		// clean 200 with an empty projection — identical to the standalone
		// path — not a failure that could poison the batch.
		resp, out := doProject(t, ts, "//item/description#", "", "<bogus><not_in_dtd/></bogus>")
		results[2] = result{resp.StatusCode, string(out)}
	}()
	wg.Wait()

	if results[0].code != http.StatusOK {
		t.Errorf("healthy batchmate got status %d: %s", results[0].code, results[0].body)
	}
	if !strings.Contains(results[0].body, "<name>PDA</name>") {
		t.Errorf("healthy batchmate output %q misses its match", results[0].body)
	}
	if results[1].code != http.StatusBadRequest {
		t.Errorf("unparseable spec got status %d, want 400", results[1].code)
	}
	if results[2].code != http.StatusOK || results[2].body != "" {
		t.Errorf("non-conforming document got status %d body %q, want an empty 200", results[2].code, results[2].body)
	}
}

// TestCoalescedCancellation checks that one client disconnecting mid-wait
// does not fail its batchmates, and that a batch whose every waiter is gone
// is cancelled instead of scanning for nobody.
func TestCoalescedCancellation(t *testing.T) {
	srv, ts := coalescingServer(t, 150*time.Millisecond, 64)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		projectURL(ts, "//item/description#", ""), strings.NewReader(auctionDoc))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-SMP-DTD", url.PathEscape(auctionDTD))

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		// This waiter joins and then disconnects before the window fires.
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	var survivorCode int
	var survivorBody string
	go func() {
		defer wg.Done()
		time.Sleep(20 * time.Millisecond) // join the same window
		cancel()                          // first waiter disconnects
		resp, out := doProject(t, ts, "//item/description#", "", auctionDoc)
		survivorCode, survivorBody = resp.StatusCode, string(out)
	}()
	wg.Wait()

	if survivorCode != http.StatusOK {
		t.Fatalf("surviving batchmate got status %d: %s", survivorCode, survivorBody)
	}
	if !strings.Contains(survivorBody, "Palm Zire 71") {
		t.Errorf("surviving batchmate output %q misses its match", survivorBody)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.metrics.snapshot().Cancelled == 0 {
		if time.Now().After(deadline) {
			t.Fatal("disconnected waiter was never counted as cancelled")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCoalescerSoak is the -race soak: hundreds of goroutines mixing
// identical-document, distinct-document, cancelled and malformed requests
// against one coalescing server. Every successful response must be
// byte-identical to the standalone Project output for its (document, spec)
// pair, and the server must unwind to its goroutine baseline afterwards.
func TestCoalescerSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	srv, ts := coalescingServer(t, 2*time.Millisecond, 8)

	// A couple of distinct documents (different content hashes) plus specs.
	docs := []string{
		auctionDoc,
		`<site><regions><africa><item><location>Ghana</location><name>Lamp</name><payment>Cash</payment><description>Brass lamp</description><shipping/><incategory category="7"/></item></africa><asia/><australia/></regions></site>`,
	}
	specs := []string{
		"/*, //australia//name#",
		"//item/description#",
		"//regions//location#",
	}
	want := make(map[string]string) // doc \x00 spec -> reference output
	for _, doc := range docs {
		for _, spec := range specs {
			pf, err := smp.Compile(auctionDTD, spec, smp.Options{})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if _, err := pf.Project(context.Background(), &buf, strings.NewReader(doc)); err != nil {
				t.Fatal(err)
			}
			want[doc+"\x00"+spec] = buf.String()
		}
	}

	before := runtime.NumGoroutine()

	const workers = 24
	const perWorker = 12
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				doc := docs[rng.Intn(len(docs))]
				spec := specs[rng.Intn(len(specs))]
				switch rng.Intn(5) {
				case 0: // cancelled mid-wait
					ctx, cancel := context.WithCancel(context.Background())
					req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
						projectURL(ts, spec, ""), strings.NewReader(doc))
					req.Header.Set("X-SMP-DTD", url.PathEscape(auctionDTD))
					go func() {
						time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
						cancel()
					}()
					resp, err := ts.Client().Do(req)
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				case 1: // malformed: unparseable spec → clean 400
					resp, _ := doProject(t, ts, "//item[", "", doc)
					if resp.StatusCode != http.StatusBadRequest {
						errs <- fmt.Errorf("malformed spec got status %d, want 400", resp.StatusCode)
					}
				default: // healthy request; verify byte identity
					resp, out := doProject(t, ts, spec, "", doc)
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("status %d: %s", resp.StatusCode, out)
						continue
					}
					if string(out) != want[doc+"\x00"+spec] {
						errs <- fmt.Errorf("coalesced output diverges for spec %q", spec)
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// All batches unwound: no leaked timer/runner goroutines, no stuck
	// admission reservations, a histogram consistent with the batch count.
	// Idle keep-alive connections (two goroutines per conn) are closed
	// first so the count can actually return to the baseline.
	ts.Client().CloseIdleConnections()
	waitGoroutines(t, before)
	if buffered, _ := srv.adm.view(); buffered != 0 {
		t.Errorf("admission gauge stuck at %d bytes after the soak", buffered)
	}
	c := srv.metrics.snapshot()
	var histSum int64
	for _, n := range c.BatchHist {
		histSum += n
	}
	if histSum != c.CoalesceBatches {
		t.Errorf("batch histogram sums to %d, want CoalesceBatches = %d", histSum, c.CoalesceBatches)
	}
	if c.InFlight != 0 {
		t.Errorf("InFlight gauge stuck at %d after the soak", c.InFlight)
	}
}

// waitGoroutines retries until the goroutine count drops back to the
// baseline (batch runners and HTTP keep-alives unwind asynchronously).
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d before", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDocumentUploadAndProject exercises the content-addressed cache API:
// upload → ETag; re-upload → dedup; If-None-Match → 304 without a body
// read; project by doc=sha256:<hex> with an empty body; GET round-trip.
func TestDocumentUploadAndProject(t *testing.T) {
	srv, ts := coalescingServer(t, 10*time.Millisecond, 8)

	post := func(body string, hdr map[string]string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/documents", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	resp := post(auctionDoc, nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d, want 201", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	hash, ok := parseDocRef(etag)
	if !ok {
		t.Fatalf("upload ETag %q does not parse as a document reference", etag)
	}
	if want := hashBytes([]byte(auctionDoc)); hash != want {
		t.Fatalf("upload ETag digest = %s, want %s", hash, want)
	}

	// Conditional re-upload: the body must not even be read.
	resp = post("ignored body", map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional re-upload status %d, want 304", resp.StatusCode)
	}

	// Project the cached document with an empty body.
	projResp, out := doProject(t, ts, "/*, //australia//name#", "doc="+url.QueryEscape(hashScheme+":"+hash), "")
	if projResp.StatusCode != http.StatusOK {
		t.Fatalf("doc= projection status %d: %s", projResp.StatusCode, out)
	}
	if !strings.Contains(string(out), "<name>PDA</name>") {
		t.Errorf("doc= projection %q misses the item name", out)
	}

	// GET round-trip with ETag and 304.
	getResp, err := ts.Client().Get(ts.URL + "/documents/" + hashScheme + ":" + hash)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(getResp.Body)
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusOK || string(body) != auctionDoc {
		t.Fatalf("GET /documents status %d, body mismatch %v", getResp.StatusCode, string(body) != auctionDoc)
	}

	// Unknown digest → 404 with a hint.
	bogus := strings.Repeat("0", hashHexLen)
	missResp, out := doProject(t, ts, "/*", "doc="+url.QueryEscape(hashScheme+":"+bogus), "")
	if missResp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown digest status %d, want 404: %s", missResp.StatusCode, out)
	}

	if st := srv.docs.stats(); st.Docs != 1 || st.Stores != 1 {
		t.Errorf("doc cache stats = %+v, want 1 doc / 1 store", st)
	}
}

// TestAdmissionShedding drains the buffered-byte budget and checks the
// 429 + Retry-After answer, the shed counter, and recovery after release.
func TestAdmissionShedding(t *testing.T) {
	srv, ts := coalescingServer(t, 10*time.Millisecond, 8)
	srv.adm.max = 16 // tiny budget: any real document overflows it

	resp, out := doProject(t, ts, "/*, //australia//name#", "", auctionDoc)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget request status %d, want 429: %s", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	if _, shed := srv.adm.view(); shed != 1 {
		t.Errorf("shed count = %d, want 1", shed)
	}
	// The budget is free again: a document under the limit goes through.
	srv.adm.max = 64 << 20
	resp, out = doProject(t, ts, "/*, //australia//name#", "", auctionDoc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery request status %d: %s", resp.StatusCode, out)
	}
}

// TestDocCacheEviction fills the cache past its byte budget and checks LRU
// eviction, the eviction counter, and that an evicted digest answers 404.
func TestDocCacheEviction(t *testing.T) {
	dc := newDocCache(t.TempDir(), 64)
	a := bytes.Repeat([]byte("a"), 40)
	b := bytes.Repeat([]byte("b"), 40)

	ea, err := dc.put(hashBytes(a), a)
	if err != nil {
		t.Fatal(err)
	}
	dc.release(ea)
	eb, err := dc.put(hashBytes(b), b)
	if err != nil {
		t.Fatal(err)
	}
	dc.release(eb)

	if _, ok := dc.get(hashBytes(a)); ok {
		t.Error("oldest entry survived an over-budget insert")
	}
	e, ok := dc.get(hashBytes(b))
	if !ok {
		t.Fatal("newest entry was evicted")
	}
	if !bytes.Equal(e.data, b) {
		t.Error("cached bytes corrupted")
	}
	dc.release(e)
	if st := dc.stats(); st.Evictions != 1 || st.Docs != 1 {
		t.Errorf("stats = %+v, want 1 eviction / 1 doc", st)
	}
}

// TestDocCacheEvictionWhileReferenced evicts an entry that a reader still
// holds: the bytes must stay valid until the last release, and the spool
// file must be gone afterwards.
func TestDocCacheEvictionWhileReferenced(t *testing.T) {
	dir := t.TempDir()
	dc := newDocCache(dir, 64)
	a := bytes.Repeat([]byte("a"), 40)
	b := bytes.Repeat([]byte("b"), 40)

	ea, err := dc.put(hashBytes(a), a)
	if err != nil {
		t.Fatal(err)
	}
	// Keep ea referenced while b evicts it.
	eb, err := dc.put(hashBytes(b), b)
	if err != nil {
		t.Fatal(err)
	}
	dc.release(eb)

	if !bytes.Equal(ea.data, a) {
		t.Fatal("evicted-but-referenced entry no longer serves its bytes")
	}
	dc.release(ea) // last release destroys

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range entries {
		if filepath.Ext(de.Name()) == ".xml" && strings.HasPrefix(de.Name(), hashBytes(a)) {
			t.Errorf("spool file %s survived the last release of a dead entry", de.Name())
		}
	}
}

// TestStatsConsistencyUnderHammer mutates the counters from many goroutines
// while /stats is polled concurrently: every snapshot must round-trip as
// JSON and satisfy the cross-field invariants (failures <= requests,
// histogram sums to the batch count) that field-by-field assembly used to
// violate.
func TestStatsConsistencyUnderHammer(t *testing.T) {
	srv, ts := coalescingServer(t, time.Millisecond, 4)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 3 {
				case 0:
					doProject(t, ts, "/*, //australia//name#", "", auctionDoc)
				case 1:
					doProject(t, ts, "//bad_spec#", "", auctionDoc)
				default:
					doProject(t, ts, "//item/description#", "coalesce=off", auctionDoc)
				}
			}
		}(w)
	}

	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		resp, err := ts.Client().Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		var st statsResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("/stats did not round-trip as JSON: %v", err)
		}
		resp.Body.Close()
		if st.Failures > st.Requests {
			t.Fatalf("inconsistent snapshot: failures %d > requests %d", st.Failures, st.Requests)
		}
		if st.CoalescedRequests > st.Requests {
			t.Fatalf("inconsistent snapshot: coalesced %d > requests %d", st.CoalescedRequests, st.Requests)
		}
		var histSum int64
		for _, n := range st.CoalesceBatchHist {
			histSum += n
		}
		if histSum != st.CoalesceBatches {
			t.Fatalf("inconsistent snapshot: histogram sums to %d, batches %d", histSum, st.CoalesceBatches)
		}
		if st.RequestsInFlight < 0 {
			t.Fatalf("negative in-flight gauge %d", st.RequestsInFlight)
		}
	}
	close(stop)
	wg.Wait()

	// Quiesced: the gauge must return to zero.
	c := srv.metrics.snapshot()
	if c.InFlight != 0 {
		t.Errorf("InFlight = %d after quiescing, want 0", c.InFlight)
	}
}
