package main

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"smp"
	"smp/internal/mmapio"
)

// The coalescer manufactures the multi-query batching that /multiproject
// asks clients to do by hand: concurrent /project requests that target the
// same document — identified by content hash, so identity survives
// re-uploads, cache references and docroot files alike — are held in a
// small time/size-bounded window and served by ONE MultiProject pass. The
// paper's reduction makes the scan the dominant cost and the scan is
// shareable across queries (PR 5), so K uncoordinated requests for one hot
// document cost one scan plus K sparse replays instead of K scans.
//
// Correctness contract, inherited from MultiProject: every coalesced
// response is byte-identical to the response an uncoalesced run would have
// produced, per-query errors are isolated, and one client disconnecting
// abandons only its own wait — the batch runs to completion for its
// batchmates, and is cancelled only when every waiter is gone.

// coalescer groups concurrent same-document requests into batches.
type coalescer struct {
	srv      *server
	window   time.Duration // how long the first arrival waits for company
	maxBatch int           // batch fires early at this many requests

	mu      sync.Mutex
	pending map[string]*coalesceBatch // key: dtdSource \x00 docHash
}

func newCoalescer(srv *server, window time.Duration, maxBatch int) *coalescer {
	if maxBatch < 2 {
		maxBatch = 2
	}
	return &coalescer{
		srv:      srv,
		window:   window,
		maxBatch: maxBatch,
		pending:  make(map[string]*coalesceBatch),
	}
}

func (c *coalescer) enabled() bool { return c != nil && c.window > 0 }

// heldDoc is a document pinned in memory for the duration of a batch: body
// bytes under an admission reservation, a refcounted document-cache entry,
// or a memory-mapped docroot file. release is idempotent.
type heldDoc struct {
	data     []byte
	hash     string
	zeroCopy bool      // served from a mapping, not a heap buffer
	entry    *docEntry // non-nil for document-cache references: index serving
	once     sync.Once
	releaseF func()
}

func (d *heldDoc) release() {
	if d == nil {
		return
	}
	d.once.Do(func() {
		if d.releaseF != nil {
			d.releaseF()
		}
	})
}

// queryResult is the outcome of one distinct canonical spec within a batch.
// Waiters that asked for the same spec share it — the output bytes are
// written once and fanned out.
type queryResult struct {
	out        bytes.Buffer
	stats      smp.Stats
	err        error
	badRequest bool // compile/spec failure → 400, not 422
}

// coalesceBatch is one window of same-document requests.
type coalesceBatch struct {
	key       string
	dtdSource string
	doc       *heldDoc

	mu      sync.Mutex
	specs   []string // one element per waiter, in arrival order
	labels  map[string]string
	live    int                // waiters still wanting the result
	cancel  context.CancelFunc // set once the run starts
	started bool

	done    chan struct{} // closed when results is complete
	results map[string]*queryResult
	size    int // final batch size, set before done closes
}

// join adds a request to the batch for (dtdSource, doc.hash), creating the
// batch — and scheduling its window — on first arrival. The batch takes
// ownership of doc if it is the first to bring it; otherwise doc is
// released immediately (its bytes are identical by hash). When the join
// fills the batch to maxBatch, it fires early on the caller's goroutine —
// the caller would only block on the result anyway.
func (c *coalescer) join(dtdSource string, doc *heldDoc, spec, label string) *coalesceBatch {
	key := dtdSource + "\x00" + doc.hash
	c.mu.Lock()
	b := c.pending[key]
	if b == nil {
		b = &coalesceBatch{
			key:       key,
			dtdSource: dtdSource,
			doc:       doc,
			labels:    make(map[string]string),
			done:      make(chan struct{}),
			results:   make(map[string]*queryResult),
		}
		c.pending[key] = b
		time.AfterFunc(c.window, func() { c.fire(b) })
	} else {
		doc.release()
	}
	b.mu.Lock()
	b.specs = append(b.specs, spec)
	if _, ok := b.labels[spec]; !ok {
		b.labels[spec] = label
	}
	b.live++
	full := len(b.specs) >= c.maxBatch
	b.mu.Unlock()
	c.mu.Unlock()
	if full {
		c.fire(b)
	}
	return b
}

// fire detaches the batch from the pending map (later arrivals start a
// fresh batch) and runs it. The timer and an early fill can race here; the
// pending-map delete under the coalescer lock elects exactly one runner.
func (c *coalescer) fire(b *coalesceBatch) {
	c.mu.Lock()
	cur, ok := c.pending[b.key]
	if !ok || cur != b {
		c.mu.Unlock()
		return // already fired (or superseded by a fresh batch)
	}
	delete(c.pending, b.key)
	c.mu.Unlock()
	c.run(b)
}

// abandon drops one waiter. When the last waiter is gone the batch run is
// cancelled — there is nobody left to deliver to.
func (b *coalesceBatch) abandon() {
	b.mu.Lock()
	b.live--
	if b.live == 0 && b.cancel != nil {
		b.cancel()
	}
	b.mu.Unlock()
}

// resultFor returns the shared result of a waiter's spec; only valid after
// done is closed.
func (b *coalesceBatch) resultFor(spec string) *queryResult { return b.results[spec] }

// run executes the batch: dedup the specs, resolve their prefilters through
// the LRU the standalone path uses, merge them (plan-sharing) into a
// MultiPrefilter, run one MultiProject pass over the pinned document, and
// publish per-spec results. Specs that fail to compile get per-spec errors;
// the rest still run. The pass executes under the batch's own context,
// cancelled only when every waiter has abandoned.
func (c *coalescer) run(b *coalesceBatch) {
	defer b.doc.release()
	defer close(b.done)

	b.mu.Lock()
	b.size = len(b.specs)
	if b.live == 0 {
		// Every waiter disconnected before the window fired: record the
		// batch but skip the scan.
		b.mu.Unlock()
		c.account(b.size, smp.Stats{})
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	b.cancel = cancel
	b.started = true
	specs := b.specs
	b.mu.Unlock()
	defer cancel()

	// Distinct specs, in first-arrival order. Requests naming the same
	// canonical spec share one query slot and one output buffer.
	unique := make([]string, 0, len(specs))
	for _, spec := range specs {
		if _, ok := b.results[spec]; ok {
			continue
		}
		b.results[spec] = &queryResult{}
		unique = append(unique, spec)
	}

	pfs := make([]*smp.Prefilter, 0, len(unique))
	slots := make([]string, 0, len(unique))
	for _, spec := range unique {
		pf, err := c.srv.cachedPrefilter(b.dtdSource, spec, b.labels[spec])
		if err != nil {
			res := b.results[spec]
			res.err, res.badRequest = err, true
			continue
		}
		pfs = append(pfs, pf)
		slots = append(slots, spec)
	}
	if len(pfs) == 0 {
		c.account(b.size, smp.Stats{})
		return
	}
	multi, err := smp.NewMultiPrefilter(pfs...)
	if err != nil {
		for _, spec := range slots {
			b.results[spec].err = err
		}
		c.account(b.size, smp.Stats{})
		return
	}

	dsts := make([]io.Writer, len(slots))
	for i, spec := range slots {
		dsts[i] = &b.results[spec].out
	}
	opts := []smp.ProjectOption{}
	docSize := int64(len(b.doc.data))
	if c.srv.intraWorkers > 1 && docSize >= c.srv.intraMin &&
		docSize >= int64(multi.MinParallelInput(c.srv.intraWorkers)) {
		opts = append(opts, smp.WithWorkers(c.srv.intraWorkers))
	}
	// A document-cache batch replays the document's candidate index when one
	// exists (or can be built) for this batch's union vocabulary: repeated
	// hot-document batches with the same query mix then skip the scan
	// entirely and still answer byte-identically.
	indexWanted := false
	if b.doc.entry != nil {
		indexWanted = true
		if ix := c.srv.docIndex(b.doc.entry, multi); ix != nil {
			opts = append(opts, smp.WithIndex(ix))
		}
	}
	var agg smp.Stats
	qstats, runErr := multi.MultiProject(ctx, dsts, bytes.NewReader(b.doc.data),
		append(opts, smp.WithStatsInto(&agg))...)
	if indexWanted && agg.IndexHits == 0 && agg.IndexSkips == 0 {
		agg.IndexSkips = 1 // at the per-document index cap: the batch scanned
	}
	for i, spec := range slots {
		b.results[spec].stats = qstats[i]
	}
	if runErr != nil {
		var merr *smp.MultiError
		if errors.As(runErr, &merr) {
			for i, spec := range slots {
				b.results[spec].err = merr.Errs[i]
			}
		} else {
			for _, spec := range slots {
				b.results[spec].err = runErr
			}
		}
	}
	c.account(b.size, agg)
}

// account records a completed batch: the size histogram, the batch count
// and the document bytes (scanned once per batch, however many requests it
// served) in one consistent update.
func (c *coalescer) account(size int, agg smp.Stats) {
	m := c.srv.metrics
	m.reg.Commit(func() {
		m.coalesceBatches.Observe(float64(size))
		m.bytesRead.Add(agg.BytesRead)
		m.indexHits.Add(agg.IndexHits)
		m.indexSkips.Add(agg.IndexSkips)
		m.indexSummarySkips.Add(agg.IndexSummarySkips)
	})
}

// serveCoalesced serves one /project request through the coalescer. It
// reports true when it fully handled the request (response written or
// client gone) and false when the request is not coalescable and should
// take the streaming path instead — e.g. a chunked or oversized body.
func (s *server) serveCoalesced(w http.ResponseWriter, r *http.Request, o *reqOutcome, dtdSource, canonical, label, docParam string) bool {
	held, handled := s.acquireCoalesceDoc(w, r, o, docParam)
	if handled {
		return true
	}
	if held == nil {
		return false
	}
	o.zeroCopy = held.zeroCopy
	b := s.coal.join(dtdSource, held, canonical, label)
	select {
	case <-r.Context().Done():
		// This client is gone; its batchmates keep running. abandon only
		// cancels the batch when no waiter is left.
		b.abandon()
		o.failed, o.cancelled = true, true
		return true
	case <-b.done:
	}
	o.coalesced = b.size > 1
	res := b.resultFor(canonical)
	if res.err != nil {
		// The outputs are buffered, so — unlike the streaming path — even a
		// mid-document failure gets a clean error response.
		code := http.StatusUnprocessableEntity
		if res.badRequest {
			code = http.StatusBadRequest
		}
		if errors.Is(res.err, context.Canceled) || errors.Is(res.err, context.DeadlineExceeded) {
			o.cancelled = true
		}
		s.failOutcome(w, o, code, res.err.Error())
		return true
	}
	h := w.Header()
	h.Set("Content-Type", "application/xml")
	h.Set("Content-Length", strconv.Itoa(res.out.Len()))
	h.Set("X-SMP-Coalesced-Batch", strconv.Itoa(b.size))
	setStatsHeaders(h, res.stats)
	n, _ := w.Write(res.out.Bytes())
	o.bytesWritten += int64(n)
	return true
}

// acquireCoalesceDoc pins the request's document in memory and computes its
// content hash — the coalescing identity. Three sources, in order of
// preference: a document-cache reference (doc=sha256:..., zero upload), a
// docroot file (memory-mapped and hashed in place via internal/mmapio), or
// the request body (buffered under the admission budget). It returns
// (nil, false) when the document cannot be pinned cheaply — unknown
// Content-Length, body over -coalescemaxbytes, unmappable oversized docroot
// file — and the caller falls back to streaming.
func (s *server) acquireCoalesceDoc(w http.ResponseWriter, r *http.Request, o *reqOutcome, docParam string) (*heldDoc, bool) {
	if docParam != "" {
		if hash, ok := parseDocRef(docParam); ok {
			if !s.docs.enabled() {
				s.failOutcome(w, o, http.StatusBadRequest, "doc="+hashScheme+":... requires the server to run with -doccache")
				return nil, true
			}
			e, ok := s.docs.get(hash)
			if !ok {
				s.failOutcome(w, o, http.StatusNotFound, "document "+formatETag(hash)+" not cached; upload it to /documents first")
				return nil, true
			}
			return &heldDoc{
				data:     e.data,
				hash:     hash,
				zeroCopy: e.mapping != nil,
				entry:    e,
				releaseF: func() { s.docs.release(e) },
			}, false
		}
		// A named docroot file: map and hash it in place.
		if s.docroot == "" {
			s.failOutcome(w, o, http.StatusBadRequest, "doc= requires the server to run with -docroot")
			return nil, true
		}
		f, err := s.openDoc(docParam)
		if err != nil {
			s.failOutcome(w, o, http.StatusNotFound, "document not found")
			return nil, true
		}
		if m, err := mmapio.Map(f); err == nil {
			f.Close()
			return &heldDoc{
				data:     m.Bytes(),
				hash:     hashBytes(m.Bytes()),
				zeroCopy: true,
				releaseF: func() { m.Close() },
			}, false
		}
		// Unmappable platform: buffer small files, stream the rest.
		if fi, err := f.Stat(); err == nil && fi.Size() <= s.coalesceMaxBytes && s.adm.reserve(fi.Size()) {
			data, err := io.ReadAll(f)
			f.Close()
			if err != nil {
				s.adm.release(fi.Size())
				s.failOutcome(w, o, http.StatusNotFound, "document not readable")
				return nil, true
			}
			size := fi.Size()
			return &heldDoc{
				data:     data,
				hash:     hashBytes(data),
				releaseF: func() { s.adm.release(size) },
			}, false
		}
		f.Close()
		return nil, false
	}

	// Request body: coalescing needs the bytes in memory to hash them, so
	// only bodies with a known, bounded Content-Length qualify; the rest
	// stream through the uncoalesced path with constant memory.
	size := r.ContentLength
	if size < 0 || size > s.coalesceMaxBytes {
		return nil, false
	}
	if !s.adm.reserve(size) {
		s.shedRequest(w, o)
		return nil, true
	}
	data, err := io.ReadAll(r.Body)
	if err != nil {
		s.adm.release(size)
		o.failed, o.cancelled = true, true
		return nil, true // client aborted its own upload; nothing to answer
	}
	return &heldDoc{
		data:     data,
		hash:     hashBytes(data),
		releaseF: func() { s.adm.release(size) },
	}, false
}
