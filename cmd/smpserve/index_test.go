package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"smp"
)

// uploadAuctionDoc uploads the fixture document and returns its digest.
func uploadAuctionDoc(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/documents", "application/xml", strings.NewReader(auctionDoc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d, want 201", resp.StatusCode)
	}
	hash, ok := parseDocRef(resp.Header.Get("ETag"))
	if !ok {
		t.Fatalf("upload ETag %q does not parse", resp.Header.Get("ETag"))
	}
	return hash
}

func serverStats(t *testing.T, ts *httptest.Server) statsResponse {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestDocIndexServesRepeatedProjections checks the lazy index path end to
// end on the uncoalesced route: the first ?doc= projection builds and
// persists the sidecar, every later one replays it — byte-identical to the
// scan, counted as index_hits in /stats.
func TestDocIndexServesRepeatedProjections(t *testing.T) {
	dir := t.TempDir()
	srv := newServer(16, 0, smp.Options{})
	srv.docs = newDocCache(dir, 64<<20)
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	hash := uploadAuctionDoc(t, ts)

	spec := "/*, //australia//description#"
	pf, err := smp.Compile(auctionDTD, spec, smp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wantBuf strings.Builder
	if _, err := pf.Project(context.Background(), &wantBuf, strings.NewReader(auctionDoc)); err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 3; round++ {
		resp, out := doProject(t, ts, spec, "doc="+url.QueryEscape(hashScheme+":"+hash)+"&coalesce=off", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: status %d: %s", round, resp.StatusCode, out)
		}
		if string(out) != wantBuf.String() {
			t.Fatalf("round %d: indexed projection differs from scan:\n%s\nwant:\n%s", round, out, wantBuf.String())
		}
	}

	st := serverStats(t, ts)
	if st.IndexHits != 3 || st.IndexSkips != 0 {
		t.Errorf("index_hits = %d, index_skips = %d, want 3, 0", st.IndexHits, st.IndexSkips)
	}
	if st.DocCache.Indexes != 1 {
		t.Errorf("doc_cache.indexes = %d, want 1", st.DocCache.Indexes)
	}
	// The sidecar persists next to the spool file, fingerprint-keyed.
	matches, err := filepath.Glob(filepath.Join(dir, hash+".*"+smp.IndexSidecarExt))
	if err != nil || len(matches) != 1 {
		t.Fatalf("sidecar glob = %v (err %v), want exactly one", matches, err)
	}
	want := srv.docs.sidecarPath(hash, pf.VocabularyFingerprint())
	if matches[0] != want {
		t.Errorf("sidecar at %s, want %s", matches[0], want)
	}
}

// TestDocIndexCoalescedBatches checks that document-cache batches through
// the coalescer replay the index too: repeated singleton batches for the
// same (document, query) count index hits after the first.
func TestDocIndexCoalescedBatches(t *testing.T) {
	_, ts := coalescingServer(t, time.Millisecond, 8)
	hash := uploadAuctionDoc(t, ts)
	spec := "/*, //australia//name#"
	for round := 0; round < 3; round++ {
		resp, out := doProject(t, ts, spec, "doc="+url.QueryEscape(hashScheme+":"+hash), "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: status %d: %s", round, resp.StatusCode, out)
		}
		if !strings.Contains(string(out), "<name>PDA</name>") {
			t.Fatalf("round %d: projection %q misses the item name", round, out)
		}
	}
	if st := serverStats(t, ts); st.IndexHits != 3 {
		t.Errorf("index_hits = %d, want 3 (every batch replays the union index)", st.IndexHits)
	}
}

// TestDocIndexCapFallsBackToScan fills a document's index map to its cap
// and checks that the next vocabulary scans instead of building — counted
// as an index skip, output still correct.
func TestDocIndexCapFallsBackToScan(t *testing.T) {
	dir := t.TempDir()
	srv := newServer(16, 0, smp.Options{})
	srv.docs = newDocCache(dir, 64<<20)
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	hash := uploadAuctionDoc(t, ts)

	e, ok := srv.docs.get(hash)
	if !ok {
		t.Fatal("uploaded document not cached")
	}
	defer srv.docs.release(e)
	pf, err := smp.Compile(auctionDTD, "/*, //australia//name#", smp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ix := pf.BuildIndex([]byte(auctionDoc))
	for fp := uint64(0); fp < maxDocIndexes; fp++ {
		if !srv.docs.admitIndex(e, fp, ix) {
			t.Fatalf("admitIndex(%d) refused below the cap", fp)
		}
	}
	if srv.docs.admitIndex(e, uint64(maxDocIndexes), ix) {
		t.Fatal("admitIndex admitted past the cap")
	}
	if got := srv.docIndex(e, pf); got != nil {
		t.Fatal("docIndex built an index past the cap")
	}

	resp, out := doProject(t, ts, "/*, //australia//name#", "doc="+url.QueryEscape(hashScheme+":"+hash)+"&coalesce=off", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	if !strings.Contains(string(out), "<name>PDA</name>") {
		t.Errorf("capped projection %q misses the item name", out)
	}
	if st := serverStats(t, ts); st.IndexHits != 0 || st.IndexSkips == 0 {
		t.Errorf("index_hits = %d, index_skips = %d, want 0 hits and >=1 skip", st.IndexHits, st.IndexSkips)
	}
}

// TestDocCacheWarmRestart exercises the -doccachedir restart path: a second
// cache over the same spool directory re-admits digest-verified documents,
// serves them (and their persisted sidecars) without re-upload, removes
// files whose content no longer matches their name, and sweeps orphaned
// sidecars.
func TestDocCacheWarmRestart(t *testing.T) {
	dir := t.TempDir()
	srv := newServer(16, 0, smp.Options{})
	srv.docs = newDocCache(dir, 64<<20)
	ts := httptest.NewServer(srv.routes())
	hash := uploadAuctionDoc(t, ts)
	spec := "/*, //australia//description#"
	// Build the sidecar before the "shutdown".
	if resp, out := doProject(t, ts, spec, "doc="+url.QueryEscape(hashScheme+":"+hash)+"&coalesce=off", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	ts.Close()

	// Sabotage for the restart sweep: one mutated document (digest no longer
	// matches its name) with a sidecar, and one orphaned sidecar.
	staleHash := hashBytes([]byte("<other/>"))
	stalePath := filepath.Join(dir, staleHash+".xml")
	if err := os.WriteFile(stalePath, []byte("<mutated-underfoot/>"), 0o644); err != nil {
		t.Fatal(err)
	}
	staleSidecar := filepath.Join(dir, fmt.Sprintf("%s.%016x%s", staleHash, 7, smp.IndexSidecarExt))
	orphanSidecar := filepath.Join(dir, fmt.Sprintf("%s.%016x%s", strings.Repeat("a", hashHexLen), 7, smp.IndexSidecarExt))
	for _, p := range []string{staleSidecar, orphanSidecar} {
		if err := os.WriteFile(p, []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	srv2 := newServer(16, 0, smp.Options{})
	srv2.docs = newDocCache(dir, 64<<20)
	if n := srv2.docs.warmRestart(); n != 1 {
		t.Fatalf("warmRestart restored %d documents, want 1", n)
	}
	ts2 := httptest.NewServer(srv2.routes())
	t.Cleanup(ts2.Close)

	// The document serves again without re-upload, and the first projection
	// replays the sidecar written by the previous process: an index hit with
	// zero builds means the candidate stream survived the restart.
	resp, out := doProject(t, ts2, spec, "doc="+url.QueryEscape(hashScheme+":"+hash)+"&coalesce=off", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart status %d: %s", resp.StatusCode, out)
	}
	if !strings.Contains(string(out), "<description>Palm Zire 71</description>") {
		t.Errorf("post-restart projection %q misses the description", out)
	}
	if st := serverStats(t, ts2); st.IndexHits != 1 || st.IndexSkips != 0 {
		t.Errorf("post-restart index_hits = %d, index_skips = %d, want 1, 0", st.IndexHits, st.IndexSkips)
	}

	for _, p := range []string{stalePath, staleSidecar, orphanSidecar} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("restart sweep left %s behind (err %v)", p, err)
		}
	}
	// The verified document and its sidecar both survive.
	if _, err := os.Stat(filepath.Join(dir, hash+".xml")); err != nil {
		t.Errorf("restart removed the verified document: %v", err)
	}
}
