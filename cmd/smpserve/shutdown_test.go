package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"testing"
	"time"
)

// TestServeUntilSignalGracefulShutdown starts the server loop on a local
// listener, parks a request inside a handler, sends the shutdown signal and
// checks that the in-flight request still completes before serveUntilSignal
// returns cleanly and the listener closes.
func TestServeUntilSignalGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		fmt.Fprint(w, "drained")
	})

	stop := make(chan os.Signal, 1)
	served := make(chan error, 1)
	go func() {
		served <- serveUntilSignal(&http.Server{Handler: mux}, ln, stop, 5*time.Second, testLogger())
	}()

	url := "http://" + ln.Addr().String() + "/slow"
	type result struct {
		body string
		err  error
	}
	reqDone := make(chan result, 1)
	go func() {
		resp, err := http.Get(url)
		if err != nil {
			reqDone <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		reqDone <- result{body: string(body), err: err}
	}()

	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached the handler")
	}

	// Signal shutdown while the request is in flight: the server must drain,
	// not return yet.
	stop <- os.Interrupt
	select {
	case err := <-served:
		t.Fatalf("serveUntilSignal returned %v before the in-flight request finished", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(release)
	res := <-reqDone
	if res.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", res.err)
	}
	if res.body != "drained" {
		t.Fatalf("in-flight response = %q, want %q", res.body, "drained")
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serveUntilSignal = %v, want clean nil shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveUntilSignal did not return after the drain completed")
	}

	// The listener is closed: new connections must be refused.
	if _, err := http.Get(url); err == nil {
		t.Fatal("connection accepted after shutdown")
	}
}

// TestServeUntilSignalListenerError checks that a failing listener surfaces
// as an error without needing a signal.
func TestServeUntilSignalListenerError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln.Close() // Serve on a closed listener fails immediately

	stop := make(chan os.Signal, 1)
	if err := serveUntilSignal(&http.Server{Handler: http.NewServeMux()}, ln, stop, time.Second, testLogger()); err == nil {
		t.Fatal("serveUntilSignal = nil, want listener error")
	}
}
