package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"smp"
)

// testLogger returns a quiet structured logger for tests.
func testLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// waitFor polls cond until it holds: the request counters are committed in
// handler defers, which may still be running when the client has already
// read the full response.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// scrapeMetrics fetches /metrics and parses the exposition into a
// name{labels} -> value map (HELP/TYPE lines skipped).
func scrapeMetrics(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parseMetrics(t, string(body))
}

func parseMetrics(t *testing.T, exposition string) map[string]float64 {
	t.Helper()
	vals := make(map[string]float64)
	for _, line := range strings.Split(exposition, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		vals[line[:sp]] = v
	}
	return vals
}

// TestMetricsReconcilesWithStats drives a mix of successful and failing
// requests, then checks that /metrics and /stats — two views of one
// registry — report the same counters, and that the per-endpoint
// instruments saw the traffic.
func TestMetricsReconcilesWithStats(t *testing.T) {
	_, ts := testServer(t, 4)
	params := "paths=" + url.QueryEscape("/*, //australia//description#")
	for i := 0; i < 3; i++ {
		resp := postProject(t, ts, params, url.PathEscape(auctionDTD), auctionDoc)
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("project status = %d", resp.StatusCode)
		}
	}
	// One guaranteed failure: no DTD at all.
	resp := postProject(t, ts, "paths="+url.QueryEscape("/*"), "", auctionDoc)
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != 400 {
		t.Fatalf("bad request status = %d, want 400", resp.StatusCode)
	}

	waitFor(t, "request counters to settle", func() bool {
		m := scrapeMetrics(t, ts)
		return m["smpserve_requests_total"] == 4 &&
			m[`smpserve_http_requests_total{endpoint="/project"}`] == 4
	})
	st := serverStats(t, ts)
	m := scrapeMetrics(t, ts)

	same := []struct {
		metric string
		stat   int64
	}{
		{"smpserve_requests_total", st.Requests},
		{"smpserve_request_failures_total", st.Failures},
		{"smpserve_requests_in_flight", st.RequestsInFlight},
		{"smpserve_requests_cancelled_total", st.Cancelled},
		{"smpserve_document_bytes_read_total", st.BytesRead},
		{"smpserve_projection_bytes_written_total", st.BytesWritten},
		{"smpserve_index_hits_total", st.IndexHits},
		{"smpserve_index_skips_total", st.IndexSkips},
		{"smpserve_index_summary_skips_total", st.IndexSummarySkips},
		{"smpserve_coalesce_batch_size_count", st.CoalesceBatches},
		{"smpserve_plan_cache_hits_total", st.CacheHits},
		{"smpserve_plan_cache_misses_total", st.CacheMisses},
		{"smpserve_plan_cache_entries", int64(st.CacheSize)},
		{"smpserve_shed_requests_total", st.ShedRequests},
	}
	for _, c := range same {
		if got, ok := m[c.metric]; !ok || got != float64(c.stat) {
			t.Errorf("%s = %v (present %v), /stats reports %d", c.metric, got, ok, c.stat)
		}
	}
	if st.Requests != 4 || st.Failures != 1 {
		t.Errorf("requests = %d, failures = %d, want 4, 1", st.Requests, st.Failures)
	}
	if got := m[`smpserve_http_requests_total{endpoint="/project"}`]; got != 4 {
		t.Errorf("http_requests{/project} = %v, want 4", got)
	}
	if got := m[`smpserve_http_request_seconds_count{endpoint="/project"}`]; got != 4 {
		t.Errorf("http_request_seconds_count{/project} = %v, want 4", got)
	}
	if got := m[`smpserve_http_request_seconds_bucket{endpoint="/project",le="+Inf"}`]; got != 4 {
		t.Errorf("latency +Inf bucket = %v, want 4", got)
	}
	// Build info renders as a gauge with value 1 whatever the labels.
	found := false
	for k, v := range m {
		if strings.HasPrefix(k, "smpserve_build_info{") && v == 1 {
			found = true
		}
	}
	if !found {
		t.Error("smpserve_build_info gauge missing from exposition")
	}
}

// TestMetricsUnderConcurrentLoad hammers /project from several goroutines
// while scraping /metrics concurrently, and checks the cross-counter
// invariants inside every single exposition: failures never exceed
// requests, and the coalesce histogram's bucket counts sum to its _count.
func TestMetricsUnderConcurrentLoad(t *testing.T) {
	srv, ts := coalescingServer(t, time.Millisecond, 8)
	params := "paths=" + url.QueryEscape("/*, //australia//name#")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				resp := postProject(t, ts, params, url.PathEscape(auctionDTD), auctionDoc)
				io.Copy(io.Discard, resp.Body)
			}
		}()
	}
	scraped := make(chan error, 1)
	go func() {
		defer close(scraped)
		for {
			select {
			case <-stop:
				return
			default:
			}
			m := scrapeMetrics(t, ts)
			if m["smpserve_request_failures_total"] > m["smpserve_requests_total"] {
				scraped <- fmt.Errorf("failures %v > requests %v in one scrape",
					m["smpserve_request_failures_total"], m["smpserve_requests_total"])
				return
			}
			if m[`smpserve_coalesce_batch_size_bucket{le="+Inf"}`] != m["smpserve_coalesce_batch_size_count"] {
				scraped <- fmt.Errorf("batch histogram +Inf bucket %v != count %v",
					m[`smpserve_coalesce_batch_size_bucket{le="+Inf"}`], m["smpserve_coalesce_batch_size_count"])
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	if err, ok := <-scraped; ok && err != nil {
		t.Fatal(err)
	}

	// Quiesced: the histogram in /stats and the one in /metrics are the same
	// instrument, bucket for bucket.
	waitFor(t, "all 100 requests to commit", func() bool {
		return srv.metrics.snapshot().Requests == 100
	})
	st := serverStats(t, ts)
	m := scrapeMetrics(t, ts)
	var histSum int64
	for _, n := range st.CoalesceBatchHist {
		histSum += n
	}
	if histSum != st.CoalesceBatches {
		t.Errorf("/stats batch hist sums to %d, coalesce_batches = %d", histSum, st.CoalesceBatches)
	}
	if got := m["smpserve_coalesce_batch_size_count"]; got != float64(st.CoalesceBatches) {
		t.Errorf("metrics batch count %v != stats %d", got, st.CoalesceBatches)
	}
	if st.Requests != 100 {
		t.Errorf("requests = %d, want 100", st.Requests)
	}
}

// TestIndexSummarySkipSurfaced projects a cached document whose vocabulary
// is disjoint from the query's: the index summary proves the replay empty,
// and the skip shows up in /stats and /metrics alike.
func TestIndexSummarySkipSurfaced(t *testing.T) {
	srv := newServer(16, 0, smp.Options{})
	srv.docs = newDocCache(t.TempDir(), 64<<20)
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)

	foreign := `<r><row>alpha</row><row>beta</row></r>`
	resp, err := ts.Client().Post(ts.URL+"/documents", "application/xml", strings.NewReader(foreign))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	hash, ok := parseDocRef(resp.Header.Get("ETag"))
	if !ok {
		t.Fatalf("upload ETag %q does not parse", resp.Header.Get("ETag"))
	}

	params := "paths=" + url.QueryEscape("/*, //australia//description#") +
		"&doc=" + url.QueryEscape(hashScheme+":"+hash) + "&coalesce=off"
	pr := postProject(t, ts, params, url.PathEscape(auctionDTD), "")
	io.Copy(io.Discard, pr.Body)

	waitFor(t, "summary skip to commit", func() bool {
		return srv.metrics.snapshot().IndexSummarySkips >= 1
	})
	st := serverStats(t, ts)
	if st.IndexSummarySkips < 1 {
		t.Errorf("index_summary_skips = %d, want >= 1", st.IndexSummarySkips)
	}
	m := scrapeMetrics(t, ts)
	if got := m["smpserve_index_summary_skips_total"]; got != float64(st.IndexSummarySkips) {
		t.Errorf("metrics summary skips %v != stats %d", got, st.IndexSummarySkips)
	}
}

// TestHealthzBuildInfo checks that the liveness endpoint reports the build
// identity alongside the ok status.
func TestHealthzBuildInfo(t *testing.T) {
	_, ts := testServer(t, 2)
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status    string `json:"status"`
		GoVersion string `json:"goversion"`
		Version   string `json:"version"`
		Revision  string `json:"revision"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q, want ok", h.Status)
	}
	if h.GoVersion == "" || h.GoVersion == "unknown" {
		t.Errorf("goversion = %q, want the embedded Go version", h.GoVersion)
	}
	if h.Version == "" || h.Revision == "" {
		t.Errorf("version = %q, revision = %q, want non-empty", h.Version, h.Revision)
	}
}

// TestRequestLogging routes one request through the instrumentation
// middleware with a JSON slog sink and checks the structured fields; a
// second request under a tiny -slowlog threshold must log at warn level.
func TestRequestLogging(t *testing.T) {
	srv, ts := testServer(t, 4)
	var buf bytes.Buffer
	var mu sync.Mutex
	srv.log = slog.New(slog.NewJSONHandler(&lockedWriter{w: &buf, mu: &mu}, nil))

	params := "paths=" + url.QueryEscape("/*, //australia//description#")
	resp := postProject(t, ts, params, url.PathEscape(auctionDTD), auctionDoc)
	io.Copy(io.Discard, resp.Body)

	waitFor(t, "request log line", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return strings.Contains(buf.String(), "\n")
	})
	mu.Lock()
	line := buf.String()
	mu.Unlock()
	var entry map[string]any
	if err := json.Unmarshal([]byte(strings.SplitN(line, "\n", 2)[0]), &entry); err != nil {
		t.Fatalf("request log line is not JSON: %v (%q)", err, line)
	}
	if entry["msg"] != "request" || entry["method"] != "POST" || entry["path"] != "/project" {
		t.Errorf("log entry = %v, want msg=request method=POST path=/project", entry)
	}
	if entry["status"] != float64(200) {
		t.Errorf("logged status = %v, want 200", entry["status"])
	}
	if entry["bytes"] == float64(0) {
		t.Error("logged bytes = 0, want the projection size")
	}

	// Every request is slower than a 1ns threshold: the next line is a warning.
	srv.slowLog = time.Nanosecond
	mu.Lock()
	buf.Reset()
	mu.Unlock()
	resp = postProject(t, ts, params, url.PathEscape(auctionDTD), auctionDoc)
	io.Copy(io.Discard, resp.Body)
	waitFor(t, "slow-request log line", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return strings.Contains(buf.String(), "\n")
	})
	mu.Lock()
	line = buf.String()
	mu.Unlock()
	if !strings.Contains(line, `"level":"WARN"`) || !strings.Contains(line, "slow request") {
		t.Errorf("slowlog line = %q, want WARN slow request", line)
	}
}

// lockedWriter serialises concurrent slog writes into one buffer.
type lockedWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
