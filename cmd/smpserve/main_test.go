package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"smp"
)

const auctionDTD = `<!DOCTYPE site [
<!ELEMENT site (regions)>
<!ELEMENT regions (africa, asia, australia)>
<!ELEMENT africa (item*)>
<!ELEMENT asia (item*)>
<!ELEMENT australia (item*)>
<!ELEMENT item (location,name,payment,description,shipping,incategory+)>
<!ELEMENT incategory EMPTY>
<!ATTLIST incategory category ID #REQUIRED>
<!ELEMENT location (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT payment (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT shipping (#PCDATA)>
]>`

const auctionDoc = `<site><regions><africa/><asia/><australia><item><location>Egypt</location><name>PDA</name><payment>Check</payment><description>Palm Zire 71</description><shipping/><incategory category="3"/></item></australia></regions></site>`

func testServer(t *testing.T, cacheSize int) (*server, *httptest.Server) {
	t.Helper()
	srv := newServer(cacheSize, 0, smp.Options{})
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postProject(t *testing.T, ts *httptest.Server, params, dtdHeader, doc string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/project?"+params, strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if dtdHeader != "" {
		req.Header.Set("X-SMP-DTD", dtdHeader)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestProjectInlineDTD posts a document with the DTD in the X-SMP-DTD
// header and checks the projection and the stats trailers.
func TestProjectInlineDTD(t *testing.T) {
	_, ts := testServer(t, 4)
	params := "paths=" + url.QueryEscape("/*, //australia//description#")
	resp := postProject(t, ts, params, url.PathEscape(auctionDTD), auctionDoc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	pf, err := smp.Compile(auctionDTD, "/*, //australia//description#", smp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wantBuf bytes.Buffer
	if _, err := pf.Project(context.Background(), &wantBuf, strings.NewReader(auctionDoc)); err != nil {
		t.Fatal(err)
	}
	want := wantBuf.Bytes()
	if !bytes.Equal(body, want) {
		t.Fatalf("projection = %q, want %q", body, want)
	}
	if got := resp.Trailer.Get("X-SMP-Bytes-Written"); got == "" {
		t.Error("missing X-SMP-Bytes-Written trailer")
	}
}

// TestProjectDatasetAndQuery uses a bundled dataset DTD plus automatic path
// extraction from an XQuery expression.
func TestProjectDatasetAndQuery(t *testing.T) {
	_, ts := testServer(t, 4)
	doc, err := smp.GenerateBytes(smp.XMark, 32<<10, 7)
	if err != nil {
		t.Fatal(err)
	}
	params := "dataset=xmark&query=" + url.QueryEscape("<q>{//australia//description}</q>")
	resp := postProject(t, ts, params, "", string(doc))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) == 0 || len(body) >= len(doc) {
		t.Fatalf("projection size %d of input %d: expected a strict, non-empty reduction", len(body), len(doc))
	}
}

// TestProjectBadRequests covers the request-validation error paths.
func TestProjectBadRequests(t *testing.T) {
	_, ts := testServer(t, 4)
	cases := []struct {
		name   string
		params string
		header string
	}{
		{"NoDTD", "paths=" + url.QueryEscape("/*"), ""},
		{"NoPaths", "dataset=xmark", ""},
		{"BothPathsAndQuery", "dataset=xmark&paths=%2F*&query=q", ""},
		{"UnknownDataset", "dataset=nope&paths=%2F*", ""},
		{"DatasetAndHeader", "dataset=xmark&paths=%2F*", url.PathEscape(auctionDTD)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postProject(t, ts, tc.params, tc.header, auctionDoc)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
		})
	}

	t.Run("NonConformingDocument", func(t *testing.T) {
		// A document that does not match the DTD fails before any output
		// byte is produced, so the service can answer with a clean 422.
		resp := postProject(t, ts, "dataset=xmark&paths="+url.QueryEscape("/*, //australia//description#"), "", "<wrong></wrong>")
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("status = %d, want 422", resp.StatusCode)
		}
	})

	t.Run("GetNotAllowed", func(t *testing.T) {
		resp, err := ts.Client().Get(ts.URL + "/project?dataset=xmark&paths=%2F*")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status = %d, want 405", resp.StatusCode)
		}
	})
}

// TestHealthzAndStats checks the service endpoints and that repeated
// requests for the same (DTD, paths) pair hit the prefilter cache.
func TestHealthzAndStats(t *testing.T) {
	srv, ts := testServer(t, 4)

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d, want 200", resp.StatusCode)
	}

	params := "dataset=xmark&paths=" + url.QueryEscape("/*, //australia//description#")
	doc, err := smp.GenerateBytes(smp.XMark, 16<<10, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		r := postProject(t, ts, params, "", string(doc))
		io.Copy(io.Discard, r.Body)
	}

	statsResp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var got statsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Requests != 3 {
		t.Errorf("stats.Requests = %d, want 3", got.Requests)
	}
	if got.CacheMisses != 1 || got.CacheHits != 2 {
		t.Errorf("cache hits/misses = %d/%d, want 2/1", got.CacheHits, got.CacheMisses)
	}
	if got.CacheSize != 1 {
		t.Errorf("stats.CacheSize = %d, want 1", got.CacheSize)
	}
	if got.BytesRead == 0 || got.BytesWritten == 0 {
		t.Errorf("stats bytes read/written = %d/%d, want non-zero", got.BytesRead, got.BytesWritten)
	}
	_ = srv
}

// TestCacheEviction fills the LRU beyond capacity and checks evictions.
func TestCacheEviction(t *testing.T) {
	cache := newPrefilterCache(2, 0)
	pf, err := smp.Compile(auctionDTD, "/*", smp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cache.put("a", "a", pf, pf.PlanStats().MemBytes)
	cache.put("b", "b", pf, pf.PlanStats().MemBytes)
	cache.put("c", "c", pf, pf.PlanStats().MemBytes) // evicts "a"
	if _, ok := cache.get("a"); ok {
		t.Error("entry a should have been evicted")
	}
	if _, ok := cache.get("b"); !ok {
		t.Error("entry b should still be cached")
	}
	entries, size, bytes, _, _, evictions := cache.view()
	if size != 2 || evictions != 1 {
		t.Errorf("size/evictions = %d/%d, want 2/1", size, evictions)
	}
	if want := 2 * (pf.PlanStats().MemBytes + int64(len("b"))); bytes != want {
		t.Errorf("cache bytes = %d, want %d (two weighted entries)", bytes, want)
	}
	for _, e := range entries {
		if e.PlanBytes != pf.PlanStats().MemBytes || e.WeightBytes <= e.PlanBytes {
			t.Errorf("entry %+v: want plan bytes %d and a strictly larger weight", e, pf.PlanStats().MemBytes)
		}
	}
}

// TestCacheByteBudget bounds the cache by plan bytes instead of entry count:
// entries are evicted as soon as the summed plan footprints exceed the
// budget, but the most recent entry always stays.
func TestCacheByteBudget(t *testing.T) {
	pf, err := smp.Compile(auctionDTD, "/*, //australia//description#", smp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	weight := pf.PlanStats().MemBytes + int64(len("a"))
	if weight <= int64(len("a")) {
		t.Fatalf("entry weight %d does not include the plan footprint", weight)
	}

	// Budget for one and a half entries: the second put must evict the first.
	cache := newPrefilterCache(16, weight*3/2)
	cache.put("a", "a", pf, pf.PlanStats().MemBytes)
	cache.put("b", "b", pf, pf.PlanStats().MemBytes)
	if _, ok := cache.get("a"); ok {
		t.Error("entry a should have been evicted by the byte budget")
	}
	if _, ok := cache.get("b"); !ok {
		t.Error("entry b should have survived")
	}

	// A budget smaller than a single plan still keeps the newest entry.
	tiny := newPrefilterCache(16, 1)
	tiny.put("only", "only", pf, pf.PlanStats().MemBytes)
	if _, ok := tiny.get("only"); !ok {
		t.Error("most recent entry must never be evicted, even over budget")
	}
}

// TestStatsReportsPlanFootprint checks that /stats exposes the per-entry
// plan footprints without leaking the DTD source.
func TestStatsReportsPlanFootprint(t *testing.T) {
	_, ts := testServer(t, 4)
	params := "dataset=xmark&paths=" + url.QueryEscape("/*, //australia//description#")
	doc, err := smp.GenerateBytes(smp.XMark, 16<<10, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := postProject(t, ts, params, "", string(doc))
	io.Copy(io.Discard, r.Body)

	statsResp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var got statsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.CacheBytes <= 0 {
		t.Errorf("stats.CacheBytes = %d, want > 0", got.CacheBytes)
	}
	if len(got.CacheEntries) != 1 {
		t.Fatalf("stats.CacheEntries = %v, want one entry", got.CacheEntries)
	}
	e := got.CacheEntries[0]
	if e.PlanBytes <= 0 || e.WeightBytes <= e.PlanBytes || e.Hits != 0 {
		t.Errorf("entry = %+v, want positive plan bytes, a larger weight and zero hits", e)
	}
	if !strings.Contains(e.Label, "dataset=xmark") || strings.Contains(e.Label, "<!ELEMENT") {
		t.Errorf("entry label %q should name the dataset and paths, never DTD source", e.Label)
	}
}

// TestConcurrentRequests hammers one cached prefilter from many goroutines
// (meaningful under -race) and checks all projections are identical.
func TestConcurrentRequests(t *testing.T) {
	_, ts := testServer(t, 4)
	doc, err := smp.GenerateBytes(smp.XMark, 64<<10, 11)
	if err != nil {
		t.Fatal(err)
	}
	params := "dataset=xmark&paths=" + url.QueryEscape("/*, //australia//description#")

	const goroutines = 8
	outs := make([][]byte, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			resp, err := ts.Client().Post(ts.URL+"/project?"+params, "application/xml", bytes.NewReader(doc))
			if err != nil {
				errs[g] = err
				return
			}
			defer resp.Body.Close()
			outs[g], errs[g] = io.ReadAll(resp.Body)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if !bytes.Equal(outs[g], outs[0]) {
			t.Fatalf("goroutine %d produced a different projection (%d vs %d bytes)", g, len(outs[g]), len(outs[0]))
		}
	}
}

// TestIntraDocParallelThreshold checks that bodies at or above -intramin
// are projected with intra-document parallelism (identical output, counted
// in /stats) while small bodies stay serial.
func TestIntraDocParallelThreshold(t *testing.T) {
	srv, ts := testServer(t, 4)
	srv.intraWorkers = 4
	srv.intraMin = 64 << 10

	// The body must exceed one segment plus its lookahead (workers × 32 KiB
	// chunk + 32 KiB lookahead = 160 KiB at 4 workers), or ProjectParallel
	// silently falls back to the serial engine and the parallel HTTP path
	// goes unexercised.
	var big bytes.Buffer
	big.WriteString(`<site><regions><africa/><asia/><australia>`)
	for big.Len() < 256<<10 {
		big.WriteString(`<item><location>x</location><name>n</name><payment>p</payment><description>lots of text</description><shipping/><incategory category="1"/></item>`)
	}
	big.WriteString(`</australia></regions></site>`)

	pf, err := smp.Compile(auctionDTD, "/*, //australia//description#", smp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wantBuf bytes.Buffer
	if _, err := pf.Project(context.Background(), &wantBuf, bytes.NewReader(big.Bytes())); err != nil {
		t.Fatal(err)
	}
	want := wantBuf.Bytes()

	params := "paths=" + url.QueryEscape("/*, //australia//description#")
	// Small body: stays serial.
	resp := postProject(t, ts, params, url.PathEscape(auctionDTD), auctionDoc)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small body: status %d", resp.StatusCode)
	}
	// Large body: takes the intra-document parallel path.
	resp = postProject(t, ts, params, url.PathEscape(auctionDTD), big.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("large body: status %d", resp.StatusCode)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("parallel projection differs: %d vs %d bytes", len(got), len(want))
	}

	statsResp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.IntraRequests != 1 {
		t.Errorf("intra_requests = %d, want 1 (workers %d, min %d)", stats.IntraRequests, stats.IntraWorkers, stats.IntraMinBytes)
	}
	if stats.IntraWorkers != 4 || stats.IntraMinBytes != 64<<10 {
		t.Errorf("intra config in /stats = (%d, %d), want (4, %d)", stats.IntraWorkers, stats.IntraMinBytes, 64<<10)
	}
}

// TestClientDisconnectCancelsProjection starts an endless streaming
// projection, disconnects the client mid-stream, and checks that the
// in-flight projection is aborted via the request context and counted in
// /stats as a cancellation.
func TestClientDisconnectCancelsProjection(t *testing.T) {
	srv, ts := testServer(t, 4)
	// africa descriptions are kept, so the response streams while the body
	// is still being produced — the disconnect happens genuinely mid-stream.
	params := "paths=" + url.QueryEscape("/*, //africa//description#")

	pr, pw := io.Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/project?"+params, pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-SMP-DTD", url.PathEscape(auctionDTD))

	go func() {
		// An endless conforming document: the projection can only end via
		// cancellation.
		if _, err := io.WriteString(pw, `<site><regions><africa>`); err != nil {
			return
		}
		for i := 0; ; i++ {
			_, err := fmt.Fprintf(pw,
				`<item><location>x</location><name>n%d</name><payment>p</payment><description>africa description %d with enough text to keep the projected stream flowing</description><shipping/><incategory category="c"/></item>`,
				i, i)
			if err != nil {
				return
			}
		}
	}()

	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	// Wait until projected output is streaming, then disconnect.
	if _, err := resp.Body.Read(make([]byte, 1)); err != nil {
		t.Fatalf("reading the projected stream: %v", err)
	}
	cancel()

	deadline := time.Now().Add(10 * time.Second)
	for srv.metrics.snapshot().Cancelled == 0 {
		if time.Now().After(deadline) {
			t.Fatal("projection was not cancelled after the client disconnected")
		}
		time.Sleep(10 * time.Millisecond)
	}

	statsResp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Cancelled < 1 {
		t.Errorf("stats.cancelled = %d, want >= 1", stats.Cancelled)
	}
}

// TestDocrootProjection checks the server-local document path: doc=<name>
// projects a file from -docroot (zero-copy where supported), GET works for
// body-less requests, traversal is confined to the root, and the path is
// rejected when no docroot is configured.
func TestDocrootProjection(t *testing.T) {
	srv, ts := testServer(t, 4)
	dir := t.TempDir()
	srv.docroot = dir
	if err := os.WriteFile(filepath.Join(dir, "auction.xml"), []byte(auctionDoc), 0o644); err != nil {
		t.Fatal(err)
	}

	params := "paths=" + url.QueryEscape("/*, //australia//name#") + "&doc=auction.xml"
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/project?"+params, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-SMP-DTD", url.PathEscape(auctionDTD))
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET doc= status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "<name>PDA</name>") {
		t.Errorf("docroot projection %q misses the item name", body)
	}
	if runtime.GOOS == "linux" {
		if got := srv.metrics.snapshot().ZeroCopyRuns; got != 1 {
			t.Errorf("zeroCopyRuns = %d, want 1", got)
		}
	}

	t.Run("missing document", func(t *testing.T) {
		resp := postProject(t, ts, "paths="+url.QueryEscape("/*")+"&doc=nope.xml", url.PathEscape(auctionDTD), "")
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("missing doc status %d, want 404", resp.StatusCode)
		}
	})
	t.Run("traversal confined", func(t *testing.T) {
		resp := postProject(t, ts, "paths="+url.QueryEscape("/*")+"&doc="+url.QueryEscape("../../etc/passwd"), url.PathEscape(auctionDTD), "")
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("traversal doc status %d, want 404", resp.StatusCode)
		}
	})
	t.Run("no docroot configured", func(t *testing.T) {
		srv2, ts2 := testServer(t, 4)
		_ = srv2
		resp := postProject(t, ts2, "paths="+url.QueryEscape("/*")+"&doc=auction.xml", url.PathEscape(auctionDTD), "")
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("no-docroot status %d, want 400", resp.StatusCode)
		}
	})
}
