package main

import (
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"smp/internal/mmapio"
)

// These tests pin down the degraded paths around internal/mmapio in the
// serving layer: documents that cannot be mapped — directories, dangling
// symlinks, zero-byte files, files truncated underfoot — must produce clean
// error responses (or clean empty projections), never a panic or partially
// served output.

func TestDocrootFallbacks(t *testing.T) {
	srv, ts := coalescingServer(t, 20*time.Millisecond, 8)
	dir := t.TempDir()
	srv.docroot = dir

	get := func(doc string) (*http.Response, string) {
		t.Helper()
		resp, out := doProject(t, ts, "/*, //australia//name#", "doc="+url.QueryEscape(doc), "")
		return resp, string(out)
	}

	t.Run("directory", func(t *testing.T) {
		if err := os.Mkdir(filepath.Join(dir, "subdir"), 0o755); err != nil {
			t.Fatal(err)
		}
		resp, body := get("subdir")
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("directory doc= got status %d (%s), want 404", resp.StatusCode, body)
		}
	})

	t.Run("dangling symlink", func(t *testing.T) {
		link := filepath.Join(dir, "dangling.xml")
		if err := os.Symlink(filepath.Join(dir, "no-such-target"), link); err != nil {
			t.Skipf("symlinks unsupported here: %v", err)
		}
		resp, body := get("dangling.xml")
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("dangling symlink doc= got status %d (%s), want 404", resp.StatusCode, body)
		}
	})

	t.Run("symlink to regular file", func(t *testing.T) {
		target := filepath.Join(dir, "real.xml")
		if err := os.WriteFile(target, []byte(auctionDoc), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Symlink(target, filepath.Join(dir, "alias.xml")); err != nil {
			t.Skipf("symlinks unsupported here: %v", err)
		}
		resp, body := get("alias.xml")
		if resp.StatusCode != http.StatusOK || !strings.Contains(body, "<name>PDA</name>") {
			t.Errorf("symlinked doc= got status %d body %q, want the projection", resp.StatusCode, body)
		}
	})

	t.Run("zero-byte file", func(t *testing.T) {
		if err := os.WriteFile(filepath.Join(dir, "empty.xml"), nil, 0o644); err != nil {
			t.Fatal(err)
		}
		// mmapio refuses empty files (ErrNotMappable), so this exercises the
		// buffered/streaming fallback. Zero bytes is truncated-at-offset-0
		// input: the engine rejects it up front, and the server must turn
		// that into a clean 422 — not a panic, not a partial response.
		resp, body := get("empty.xml")
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("zero-byte doc= got status %d body %q, want a clean 422", resp.StatusCode, body)
		}
	})

	t.Run("truncated between requests", func(t *testing.T) {
		// Serve once, truncate the file, serve again: the second response
		// must reflect the truncated content — a clean 422 from the engine
		// rejecting the cut-off document — never stale pre-truncation bytes
		// from a cached mapping, and never a panic.
		path := filepath.Join(dir, "shrinking.xml")
		if err := os.WriteFile(path, []byte(auctionDoc), 0o644); err != nil {
			t.Fatal(err)
		}
		resp, body := get("shrinking.xml")
		if resp.StatusCode != http.StatusOK || !strings.Contains(body, "<name>PDA</name>") {
			t.Fatalf("pre-truncation doc= got status %d body %q", resp.StatusCode, body)
		}
		if err := os.Truncate(path, 6); err != nil { // "<site>"
			t.Fatal(err)
		}
		resp, body = get("shrinking.xml")
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("post-truncation doc= got status %d (%s), want a clean 422", resp.StatusCode, body)
		}
		if strings.Contains(body, "PDA") {
			t.Errorf("post-truncation response %q serves stale pre-truncation content", body)
		}
	})

	_ = srv // srv's docroot stays set for every subtest above
}

// TestDocCacheSpoolTruncation corrupts the spool file between spooling and
// mapping: the cache's post-map verification must reject the entry with a
// clean error instead of serving bytes that do not match the digest.
func TestDocCacheSpoolTruncation(t *testing.T) {
	dir := t.TempDir()
	dc := newDocCache(dir, 1<<20)
	data := []byte(strings.Repeat("x", 4096))
	hash := hashBytes(data)

	// The post-map verification compares the mapped bytes against the
	// entry's digest, so any corruption between write and map — truncation,
	// a concurrent overwrite — surfaces as a digest mismatch. Drive it
	// directly: spool under a key that does not match the content.
	if _, err := dc.spool(hashBytes([]byte("something else")), data); err == nil {
		t.Error("spool accepted content whose digest does not match its key")
	}

	// The honest path still works.
	e, err := dc.spool(hash, data)
	if err != nil {
		t.Fatalf("honest spool failed: %v", err)
	}
	if string(e.data) != string(data) {
		t.Error("spooled entry does not serve its bytes")
	}
	e.destroy()
}

// TestDocCacheZeroByteDocument stores an empty document: mmapio refuses to
// map empty files, so the entry must degrade to a heap copy and still serve.
func TestDocCacheZeroByteDocument(t *testing.T) {
	dc := newDocCache(t.TempDir(), 1<<20)
	hash := hashBytes(nil)
	e, err := dc.put(hash, nil)
	if err != nil {
		t.Fatalf("putting an empty document: %v", err)
	}
	if e.mapping != nil {
		t.Error("empty document claims a mapping; mmapio cannot map empty files")
	}
	if len(e.data) != 0 {
		t.Errorf("empty document serves %d bytes", len(e.data))
	}
	dc.release(e)
	got, ok := dc.get(hash)
	if !ok {
		t.Fatal("empty document not retrievable")
	}
	dc.release(got)
}

// TestHashFileFallbacks checks hashFile on inputs mmapio refuses: the
// digest must match the streaming reference and the file offset must be
// preserved for the subsequent projection.
func TestHashFileFallbacks(t *testing.T) {
	dir := t.TempDir()

	t.Run("empty file", func(t *testing.T) {
		path := filepath.Join(dir, "empty")
		if err := os.WriteFile(path, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if _, err := mmapio.Map(f); err == nil {
			t.Fatal("mmapio mapped an empty file; the fallback is untested")
		}
		hash, err := hashFile(f)
		if err != nil {
			t.Fatalf("hashFile on an empty file: %v", err)
		}
		if want := hashBytes(nil); hash != want {
			t.Errorf("hashFile = %s, want %s", hash, want)
		}
	})

	t.Run("offset preserved", func(t *testing.T) {
		path := filepath.Join(dir, "data")
		if err := os.WriteFile(path, []byte("hello world"), 0o644); err != nil {
			t.Fatal(err)
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		hash, err := hashFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if want := hashBytes([]byte("hello world")); hash != want {
			t.Errorf("hashFile = %s, want %s", hash, want)
		}
		// Whatever path hashFile took, the handle must still read from 0.
		buf := make([]byte, 5)
		if _, err := f.Read(buf); err != nil || string(buf) != "hello" {
			t.Errorf("file offset disturbed: read %q, %v", buf, err)
		}
	})
}
