package main

import (
	"strings"
	"testing"
)

// FuzzDocRef fuzzes the one parser behind document identity: the coalescing
// key, the doc=sha256:<hex> cache reference and the HTTP ETag / If-None-Match
// spellings all go through parseDocRef. The properties that keep caches and
// batches sound:
//
//   - no panic on any input (the header is attacker-controlled);
//   - any accepted digest is canonical: 64 lowercase hex digits, and
//     re-parsing its own formatted ETag round-trips to the same digest
//     (otherwise equal documents could land in different batches);
//   - acceptance is case-insensitive but the output never is — two
//     spellings of one digest must produce one key;
//   - matchesIfNoneMatch is consistent with parseDocRef: a header matches a
//     digest iff one of its comma-separated elements (or "*") parses to it.
func FuzzDocRef(f *testing.F) {
	valid := hashBytes([]byte("seed document"))
	f.Add(hashScheme + ":" + valid)
	f.Add(`"` + hashScheme + ":" + valid + `"`)
	f.Add("W/\"" + hashScheme + ":" + valid + "\"")
	f.Add(hashScheme + ":" + strings.ToUpper(valid))
	f.Add("  " + hashScheme + ":" + valid + "  ")
	f.Add("*")
	f.Add("")
	f.Add(hashScheme + ":")
	f.Add(hashScheme + ":" + valid[:hashHexLen-1])    // one digit short
	f.Add(hashScheme + ":" + valid + "0")             // one digit long
	f.Add("md5:" + valid)                             // wrong scheme
	f.Add(hashScheme + ":" + strings.Repeat("g", 64)) // non-hex
	f.Add(hashScheme + ":" + strings.Repeat("0", 64) + "," + hashScheme + ":" + valid)
	f.Add("\"unclosed")
	f.Add("W/")
	f.Add("w/\"\"")

	f.Fuzz(func(t *testing.T, s string) {
		hash, ok := parseDocRef(s)
		if !ok {
			if hash != "" {
				t.Fatalf("rejected input %q still produced a digest %q", s, hash)
			}
		} else {
			if len(hash) != hashHexLen {
				t.Fatalf("accepted digest %q has length %d, want %d", hash, len(hash), hashHexLen)
			}
			for i := 0; i < len(hash); i++ {
				c := hash[i]
				if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
					t.Fatalf("accepted digest %q is not canonical lowercase hex", hash)
				}
			}
			// Round-trip: the ETag we would emit for this digest parses back
			// to the same digest, so the upload→reference cycle is stable.
			back, ok2 := parseDocRef(formatETag(hash))
			if !ok2 || back != hash {
				t.Fatalf("formatETag(%q) does not round-trip: got %q, %v", hash, back, ok2)
			}
			// Uppercasing the hex must not change the key (the scheme itself
			// is case-sensitive; only the digits are folded).
			if up, ok3 := parseDocRef(hashScheme + ":" + strings.ToUpper(hash)); !ok3 || up != hash {
				t.Fatalf("uppercase spelling of %q parses to %q/%v, want the same key", hash, up, ok3)
			}
			// A single-element If-None-Match naming this digest matches it.
			if !matchesIfNoneMatch(s, hash) {
				t.Fatalf("If-None-Match %q does not match its own digest %q", s, hash)
			}
		}

		// matchesIfNoneMatch must never panic and must agree with the
		// element-wise definition against an arbitrary reference digest.
		ref := hashBytes([]byte(s))
		got := matchesIfNoneMatch(s, ref)
		want := strings.TrimSpace(s) == "*"
		for _, part := range strings.Split(s, ",") {
			if h, ok := parseDocRef(part); ok && h == ref {
				want = true
			}
		}
		if got != want {
			t.Fatalf("matchesIfNoneMatch(%q, %s) = %v, element-wise reference says %v", s, ref, got, want)
		}
	})
}
