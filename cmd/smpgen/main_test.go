package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseSize(t *testing.T) {
	cases := map[string]int64{
		"1024":   1024,
		"2KiB":   2048,
		"2KB":    2048,
		"1MiB":   1 << 20,
		"1.5MiB": 3 << 19,
		"1GiB":   1 << 30,
		"10B":    10,
	}
	for in, want := range cases {
		got, err := parseSize(in)
		if err != nil {
			t.Errorf("parseSize(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("parseSize(%q) = %d, want %d", in, got, want)
		}
	}
	for _, bad := range []string{"", "abc", "12Q"} {
		if _, err := parseSize(bad); err == nil {
			t.Errorf("parseSize(%q) succeeded, want error", bad)
		}
	}
}

func TestGenerateToFiles(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "xmark.xml")
	dtdOut := filepath.Join(dir, "xmark.dtd")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-dataset", "xmark", "-size", "50KiB", "-out", out, "-dtdout", dtdOut}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc) < 30_000 || !bytes.HasPrefix(doc, []byte("<site>")) {
		t.Errorf("unexpected document (%d bytes)", len(doc))
	}
	dtdSrc, err := os.ReadFile(dtdOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dtdSrc), "<!ELEMENT site") {
		t.Error("DTD output missing the site element")
	}
	if !strings.Contains(stderr.String(), "wrote") {
		t.Errorf("stderr = %q", stderr.String())
	}
}

func TestGenerateMedlineToStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-dataset", "medline", "-size", "30KiB"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(stdout.String(), "<MedlineCitationSet>") {
		t.Errorf("stdout starts with %q", stdout.String()[:40])
	}
}

func TestGenerateErrors(t *testing.T) {
	cases := [][]string{
		{"-dataset", "protein"},
		{"-size", "nonsense"},
		{"-dataset", "xmark", "-out", "/no/such/dir/x.xml"},
		{"-dataset", "protein", "-dtdout", t.TempDir() + "/x.dtd"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if err := run(args, &stdout, &stderr); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
