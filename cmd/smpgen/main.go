// Command smpgen generates the synthetic benchmark datasets (XMark-like and
// MEDLINE-like documents) together with their DTDs.
//
// Examples:
//
//	smpgen -dataset xmark -size 64MiB -out xmark.xml -dtdout xmark.dtd
//	smpgen -dataset medline -size 16MiB -seed 7 > medline.xml
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"smp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "smpgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("smpgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dataset = fs.String("dataset", "xmark", "dataset to generate: xmark or medline")
		size    = fs.String("size", "16MiB", "approximate document size (e.g. 500KiB, 64MiB, 1GiB)")
		seed    = fs.Uint64("seed", 0, "generator seed")
		out     = fs.String("out", "", "output file (default: stdout)")
		dtdOut  = fs.String("dtdout", "", "also write the dataset's DTD to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	target, err := parseSize(*size)
	if err != nil {
		return err
	}
	d := smp.Dataset(strings.ToLower(*dataset))

	if *dtdOut != "" {
		dtdSrc, err := smp.DatasetDTD(d)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*dtdOut, []byte(dtdSrc), 0o644); err != nil {
			return err
		}
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	n, err := smp.Generate(d, w, target, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %d bytes of %s data\n", n, d)
	return nil
}

// parseSize parses sizes like "64MiB", "500KB", "2GiB" or plain byte counts.
func parseSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	units := []struct {
		suffix string
		factor int64
	}{
		{"GiB", 1 << 30}, {"GB", 1 << 30}, {"G", 1 << 30},
		{"MiB", 1 << 20}, {"MB", 1 << 20}, {"M", 1 << 20},
		{"KiB", 1 << 10}, {"KB", 1 << 10}, {"K", 1 << 10},
		{"B", 1},
	}
	for _, u := range units {
		if strings.HasSuffix(s, u.suffix) {
			v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimSuffix(s, u.suffix)), 64)
			if err != nil {
				return 0, fmt.Errorf("invalid size %q", s)
			}
			return int64(v * float64(u.factor)), nil
		}
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid size %q", s)
	}
	return v, nil
}
