package smp

import (
	"context"
	"errors"
	"io"

	"smp/internal/core"
	"smp/internal/corpus"
	"smp/internal/pipeline"
)

// BatchJob is one document of a batch: a name for reporting, a source, and
// an optional destination for the projected output. See the aliased type
// for the field contracts (Src is opened exactly once, by the worker that
// picks the job up; a nil Dst discards the output).
type BatchJob = corpus.Job

// BatchResult is the outcome of one batch job: the job's name, the worker
// that ran it, the run's Stats and wall-clock time, and the job's first
// error — errors are isolated per job and never stop the batch.
type BatchResult = corpus.Result

// BatchAggregate sums a batch's results: documents attempted and failed,
// bytes in and out, and the batch wall-clock time, with throughput and
// output-ratio helpers.
type BatchAggregate = corpus.Aggregate

// BatchFromBytes builds a BatchJob over an in-memory document that discards
// its output. Attach a Dst afterwards to keep the projection.
func BatchFromBytes(name string, doc []byte) BatchJob {
	return corpus.FromBytes(name, doc)
}

// BatchFromFile builds a BatchJob that reads the document from inPath and,
// if outPath is non-empty, writes the projection to outPath. A job that
// fails or is cancelled mid-stream removes its partial outPath, matching
// the ProjectFile contract.
func BatchFromFile(inPath, outPath string) BatchJob {
	return corpus.FromFile(inPath, outPath)
}

// BatchMultiFromFile builds a BatchJob for a multi-query batch (a Batch with
// Multi set): the document read from inPath, query i's projection written to
// outPaths[i] (an empty outPath discards that query's output). A job that
// fails or is cancelled removes every output file it created.
func BatchMultiFromFile(inPath string, outPaths []string) BatchJob {
	return corpus.FromFileMulti(inPath, outPaths)
}

// WithBatchIndex attaches a sidecar loader to a job: the worker that picks
// the job up reads the document's conventional sidecar
// (IndexSidecarPath(sidecarFor)) and, when it is present, intact, fresh and
// covering, replays it instead of scanning (Stats.IndexHits); any other
// outcome — including a sidecar deleted mid-batch — falls back to the scan
// and is counted in Stats.IndexSkips. Documents whose vocabulary summary
// rules out every query keyword replay without touching their bytes
// (Stats.IndexSummarySkips) — the paper's prefiltering idea at corpus
// granularity.
func WithBatchIndex(job BatchJob, sidecarFor string) BatchJob {
	job.Index = func() (*Index, error) { return ReadIndex(IndexSidecarPath(sidecarFor)) }
	return job
}

// Batch shards a corpus of documents across a pool of worker goroutines
// driving one compiled Prefilter. Every worker gets a private engine built
// over the prefilter's immutable plan, so K workers hold one copy of the
// compiled tables (matchers, interned tags, vocabulary orders) and only the
// window buffers are per-worker. This is the inter-document axis of
// parallelism; combine it with Project's WithWorkers for the intra-document
// axis.
//
// The zero value of Workers selects runtime.GOMAXPROCS(0). A Batch value is
// immutable configuration; Run may be called many times and concurrently.
type Batch struct {
	// Prefilter is the compiled prefilter every worker executes (required
	// unless Multi is set).
	Prefilter *Prefilter
	// Multi, if non-nil, turns the batch into a multi-query batch: every
	// job's document is projected for all of Multi's queries in one shared
	// scan (see MultiPrefilter). Per-query destinations come from the job
	// (BatchMultiFromFile); per-query counters land in BatchResult.QueryStats
	// and a failed query surfaces as a *MultiError in the job's Err. Multi
	// takes precedence over Prefilter.
	Multi *MultiPrefilter
	// Workers is the pool size; values < 1 select runtime.GOMAXPROCS(0).
	Workers int
	// IntraWorkers, if > 1, additionally fans each job's document scan out
	// across that many segment-scan workers (Project's WithWorkers axis), so
	// a batch can combine inter-document and intra-document parallelism.
	// Documents smaller than the parallel threshold keep the serial scan.
	IntraWorkers int
	// ChunkSize overrides the streaming window chunk size of every job in
	// the batch; 0 keeps the prefilter's compiled value.
	ChunkSize int
}

// Run pushes every job through the worker pool and returns the per-job
// results (in job order) plus the batch aggregate. Jobs that fail do not
// stop the batch; their error is recorded in their BatchResult. Cancelling
// ctx marks not-yet-started jobs with ctx.Err() and aborts in-flight jobs
// at their next chunk boundary, so a cancelled batch drains promptly.
func (b *Batch) Run(ctx context.Context, jobs []BatchJob) ([]BatchResult, BatchAggregate) {
	if b.Multi != nil {
		// A MultiPrefilter is immutable and safe for concurrent use, so every
		// worker can drive the same merged scan tables; only the per-run
		// segment chain is private to each in-flight job.
		multi := b.Multi.multi
		opts := pipeline.Options{Workers: b.IntraWorkers, ChunkSize: b.ChunkSize}
		runner := corpus.Runner{
			NewMultiEngine: func() corpus.MultiEngine { return multiBatchEngine{multi, opts} },
			Workers:        b.Workers,
		}
		return runner.Run(ctx, jobs)
	}
	if b.Prefilter == nil {
		results := make([]BatchResult, len(jobs))
		err := errors.New("smp: Batch needs a Prefilter or a Multi")
		for i, job := range jobs {
			results[i] = BatchResult{Name: job.Name, Err: err}
		}
		return results, BatchAggregate{Documents: len(jobs), Failed: len(jobs)}
	}
	if b.IntraWorkers > 1 {
		// Both axes at once: the shared K=1 pipeline engine is immutable, so
		// every batch worker can drive it concurrently; each job fans its
		// document scan out across IntraWorkers segment scanners.
		eng := b.Prefilter.projector()
		opts := pipeline.Options{Workers: b.IntraWorkers, ChunkSize: b.ChunkSize}
		runner := corpus.Runner{
			NewEngine: func() corpus.Engine { return intraBatchEngine{eng, opts} },
			Workers:   b.Workers,
		}
		return runner.Run(ctx, jobs)
	}
	plan := b.Prefilter.engine.Plan()
	chunk := b.ChunkSize
	pipe := b.Prefilter.projector()
	runner := corpus.Runner{
		NewEngine: func() corpus.Engine { return batchEngine{core.NewFromPlan(plan), chunk, pipe} },
		Workers:   b.Workers,
	}
	return runner.Run(ctx, jobs)
}

// batchEngine adapts a shared-plan core engine to the corpus runner,
// carrying the batch's chunk-size override into every run. Jobs with a
// sidecar loader route through the prefilter's shared pipeline engine, which
// owns the replay stage.
type batchEngine struct {
	pf    *core.Prefilter
	chunk int
	pipe  *pipeline.Engine
}

func (e batchEngine) Project(ctx context.Context, dst io.Writer, src io.Reader) (core.Stats, error) {
	return e.pf.ProjectWith(ctx, dst, src, core.RunOptions{ChunkSize: e.chunk})
}

func (e batchEngine) ProjectIndexed(ctx context.Context, dst io.Writer, src io.Reader, ix *Index) (core.Stats, error) {
	if ix == nil {
		st, err := e.Project(ctx, dst, src)
		st.IndexSkips = 1
		return st, err
	}
	res, err := replayOrScan(ctx, e.pipe, []io.Writer{dst}, src, ix, pipeline.Options{ChunkSize: e.chunk})
	return res.Aggregate(), singleQueryErr(err)
}

// intraBatchEngine adapts the K=1 pipeline engine to the corpus runner for
// batches that also fan out within each document.
type intraBatchEngine struct {
	eng  *pipeline.Engine
	opts pipeline.Options
}

func (e intraBatchEngine) Project(ctx context.Context, dst io.Writer, src io.Reader) (core.Stats, error) {
	res, err := e.eng.Project(ctx, []io.Writer{dst}, src, e.opts)
	return res.Aggregate(), singleQueryErr(err)
}

func (e intraBatchEngine) ProjectIndexed(ctx context.Context, dst io.Writer, src io.Reader, ix *Index) (core.Stats, error) {
	if ix == nil {
		st, err := e.Project(ctx, dst, src)
		st.IndexSkips = 1
		return st, err
	}
	res, err := replayOrScan(ctx, e.eng, []io.Writer{dst}, src, ix, e.opts)
	return res.Aggregate(), singleQueryErr(err)
}

// multiBatchEngine adapts a merged multi-query projection to the corpus
// runner, carrying the batch's worker and chunk-size overrides into every
// run.
type multiBatchEngine struct {
	m    *pipeline.Engine
	opts pipeline.Options
}

func (e multiBatchEngine) MultiProject(ctx context.Context, dsts []io.Writer, src io.Reader) ([]core.Stats, core.Stats, error) {
	res, err := e.m.Project(ctx, dsts, src, e.opts)
	return res.Query, res.Aggregate(), err
}

func (e multiBatchEngine) MultiProjectIndexed(ctx context.Context, dsts []io.Writer, src io.Reader, ix *Index) ([]core.Stats, core.Stats, error) {
	if ix == nil {
		query, run, err := e.MultiProject(ctx, dsts, src)
		run.IndexSkips = 1
		return query, run, err
	}
	res, err := replayOrScan(ctx, e.m, dsts, src, ix, e.opts)
	return res.Query, res.Aggregate(), err
}
