package smp

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// batchFixture compiles one prefilter and a set of distinct documents with
// their serial projections.
func batchFixture(t *testing.T) (*Prefilter, [][]byte, [][]byte) {
	t.Helper()
	dtdSource, err := DatasetDTD(XMark)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := Compile(dtdSource, "/*, //australia//description#", Options{})
	if err != nil {
		t.Fatal(err)
	}
	docs := make([][]byte, 6)
	want := make([][]byte, len(docs))
	for i := range docs {
		docs[i], err = GenerateBytes(XMark, 64<<10, uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		want[i], _ = projectBytes(t, pf, docs[i])
	}
	return pf, docs, want
}

// syncBuffer is an in-memory WriteCloser destination safe for worker use.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Close() error { return nil }

func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Bytes()
}

// TestBatchMatchesSerial shards a batch across workers and checks the
// projections and aggregate counters against the serial runs.
func TestBatchMatchesSerial(t *testing.T) {
	pf, docs, want := batchFixture(t)

	outs := make([]*syncBuffer, len(docs))
	jobs := make([]BatchJob, len(docs))
	for i, doc := range docs {
		outs[i] = &syncBuffer{}
		job := BatchFromBytes("doc"+strconv.Itoa(i), doc)
		out := outs[i]
		job.Dst = func() (io.WriteCloser, error) { return out, nil }
		jobs[i] = job
	}
	batch := Batch{Prefilter: pf, Workers: 3}
	results, agg := batch.Run(context.Background(), jobs)
	if agg.Failed != 0 {
		t.Fatalf("agg.Failed = %d, want 0 (results %+v)", agg.Failed, results)
	}
	if agg.Documents != len(docs) {
		t.Fatalf("agg.Documents = %d, want %d", agg.Documents, len(docs))
	}
	var wantWritten int64
	for i := range docs {
		if results[i].Name != "doc"+strconv.Itoa(i) {
			t.Fatalf("results[%d].Name = %q: results out of job order", i, results[i].Name)
		}
		if !bytes.Equal(outs[i].Bytes(), want[i]) {
			t.Errorf("doc %d: batch projection differs from serial (%d vs %d bytes)", i, len(outs[i].Bytes()), len(want[i]))
		}
		wantWritten += int64(len(want[i]))
	}
	if agg.BytesWritten != wantWritten {
		t.Errorf("agg.BytesWritten = %d, want %d", agg.BytesWritten, wantWritten)
	}
}

// TestBatchJobErrorIsolation checks that one failing job never stops the
// batch: its error lands in its own BatchResult and every other job runs.
func TestBatchJobErrorIsolation(t *testing.T) {
	pf, docs, _ := batchFixture(t)
	boom := errors.New("boom")
	jobs := []BatchJob{
		BatchFromBytes("ok0", docs[0]),
		{Name: "bad-src", Src: func() (io.ReadCloser, error) { return nil, boom }},
		BatchFromBytes("bad-doc", []byte("<wrong/>")),
		BatchFromBytes("ok1", docs[1]),
	}
	results, agg := (&Batch{Prefilter: pf, Workers: 2}).Run(context.Background(), jobs)
	if agg.Failed != 2 {
		t.Fatalf("agg.Failed = %d, want 2", agg.Failed)
	}
	if !errors.Is(results[1].Err, boom) {
		t.Errorf("results[1].Err = %v, want %v", results[1].Err, boom)
	}
	if results[2].Err == nil {
		t.Error("results[2].Err = nil, want a DTD-conformance error")
	}
	for _, i := range []int{0, 3} {
		if results[i].Err != nil {
			t.Errorf("results[%d].Err = %v, want nil", i, results[i].Err)
		}
	}
}

// TestBatchFromFile round-trips a document through file-based jobs.
func TestBatchFromFile(t *testing.T) {
	pf, docs, want := batchFixture(t)
	dir := t.TempDir()
	in := filepath.Join(dir, "in.xml")
	out := filepath.Join(dir, "out.xml")
	if err := os.WriteFile(in, docs[0], 0o644); err != nil {
		t.Fatal(err)
	}
	results, agg := (&Batch{Prefilter: pf, Workers: 1}).Run(context.Background(), []BatchJob{BatchFromFile(in, out)})
	if agg.Failed != 0 {
		t.Fatalf("run failed: %v", results[0].Err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want[0]) {
		t.Fatalf("file projection differs from serial (%d vs %d bytes)", len(got), len(want[0]))
	}
}

// TestBatchNeedsPrefilter checks the nil-Prefilter contract: errors in the
// results, no panic.
func TestBatchNeedsPrefilter(t *testing.T) {
	jobs := []BatchJob{BatchFromBytes("a", []byte("<a/>"))}
	results, agg := (&Batch{}).Run(context.Background(), jobs)
	if agg.Failed != 1 || results[0].Err == nil {
		t.Fatalf("want a per-job error, got agg %+v results %+v", agg, results)
	}
	if !strings.Contains(results[0].Err.Error(), "Prefilter") {
		t.Errorf("error %q should name the missing Prefilter", results[0].Err)
	}
}

// TestBatchChunkSizeOverride checks that the batch-level chunk override
// reaches the workers without changing the output.
func TestBatchChunkSizeOverride(t *testing.T) {
	pf, docs, want := batchFixture(t)
	outs := make([]*syncBuffer, len(docs))
	jobs := make([]BatchJob, len(docs))
	for i, doc := range docs {
		outs[i] = &syncBuffer{}
		job := BatchFromBytes("doc"+strconv.Itoa(i), doc)
		out := outs[i]
		job.Dst = func() (io.WriteCloser, error) { return out, nil }
		jobs[i] = job
	}
	_, agg := (&Batch{Prefilter: pf, Workers: 2, ChunkSize: 1 << 10}).Run(context.Background(), jobs)
	if agg.Failed != 0 {
		t.Fatalf("agg.Failed = %d, want 0", agg.Failed)
	}
	for i := range docs {
		if !bytes.Equal(outs[i].Bytes(), want[i]) {
			t.Errorf("doc %d: chunk-override projection differs", i)
		}
	}
}

// TestBatchFromFileRemovesPartialOutput checks the ProjectFile contract on
// the batch path: a job that fails (or is cancelled) mid-stream must not
// leave a truncated output file behind.
func TestBatchFromFileRemovesPartialOutput(t *testing.T) {
	pf, docs, _ := batchFixture(t)
	dir := t.TempDir()

	// A document that starts conforming (output gets written) and then
	// breaks off inside a tag.
	bad := append([]byte{}, docs[0][:len(docs[0])-40]...)
	bad = append(bad, []byte("<name oops")...)
	in := filepath.Join(dir, "bad.xml")
	if err := os.WriteFile(in, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.xml")
	results, agg := (&Batch{Prefilter: pf, Workers: 1}).Run(context.Background(), []BatchJob{BatchFromFile(in, out)})
	if agg.Failed != 1 {
		t.Fatalf("agg.Failed = %d, want 1 (err %v)", agg.Failed, results[0].Err)
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Errorf("partial output file left behind after failure (stat err = %v)", err)
	}

	// Cancelled mid-batch: same contract.
	good := filepath.Join(dir, "good.xml")
	if err := os.WriteFile(good, docs[0], 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	outCancelled := filepath.Join(dir, "out-cancelled.xml")
	results, _ = (&Batch{Prefilter: pf, Workers: 1}).Run(ctx, []BatchJob{BatchFromFile(good, outCancelled)})
	if !errors.Is(results[0].Err, context.Canceled) {
		t.Fatalf("results[0].Err = %v, want context.Canceled", results[0].Err)
	}
	if _, err := os.Stat(outCancelled); !os.IsNotExist(err) {
		t.Errorf("output file left behind after cancellation (stat err = %v)", err)
	}
}
