package smp

// Race-focused tests for the concurrent prefiltering surface: one compiled
// Prefilter driven from many goroutines must produce byte-identical output
// to the serial path, with the pooled per-run engine state never leaking
// between runs. Run with `go test -race` to make the checks meaningful.

import (
	"bytes"
	"context"
	"io"
	"strconv"
	"sync"
	"testing"
)

// concurrencyFixture compiles one prefilter and a set of distinct documents
// with their serial projections.
func concurrencyFixture(t *testing.T) (*Prefilter, [][]byte, [][]byte) {
	t.Helper()
	dtdSource, err := DatasetDTD(XMark)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := Compile(dtdSource, "/*, //australia//description#", Options{})
	if err != nil {
		t.Fatal(err)
	}
	const docCount = 4
	docs := make([][]byte, docCount)
	want := make([][]byte, docCount)
	for i := range docs {
		docs[i], err = GenerateBytes(XMark, 96<<10, uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := pf.Project(context.Background(), &buf, bytes.NewReader(docs[i])); err != nil {
			t.Fatal(err)
		}
		want[i] = buf.Bytes()
	}
	return pf, docs, want
}

// TestPrefilterConcurrentIdenticalOutput runs one compiled Prefilter from
// many goroutines over a rotating set of documents and asserts every
// projection matches the serial result byte for byte.
func TestPrefilterConcurrentIdenticalOutput(t *testing.T) {
	pf, docs, want := concurrencyFixture(t)

	const goroutines = 16
	const iterations = 6
	errc := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iterations; it++ {
				i := (g + it) % len(docs)
				var out bytes.Buffer
				stats, err := pf.Project(context.Background(), &out, bytes.NewReader(docs[i]))
				if err != nil {
					errc <- err
					return
				}
				if !bytes.Equal(out.Bytes(), want[i]) {
					errc <- &mismatchError{goroutine: g, doc: i, got: out.Len(), want: len(want[i])}
					return
				}
				if stats.BytesRead != int64(len(docs[i])) || stats.BytesWritten != int64(len(want[i])) {
					errc <- &mismatchError{goroutine: g, doc: i, got: int(stats.BytesWritten), want: len(want[i])}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

type mismatchError struct {
	goroutine, doc, got, want int
}

func (e *mismatchError) Error() string {
	return "goroutine " + strconv.Itoa(e.goroutine) + ", doc " + strconv.Itoa(e.doc) +
		": projection size " + strconv.Itoa(e.got) + ", want " + strconv.Itoa(e.want)
}

// TestPrefilterSequentialReuseStatsReset checks that the pooled engine
// state (window buffer, matcher instrumentation) is fully reset between
// runs: repeating the same document must repeat the same counters.
func TestPrefilterSequentialReuseStatsReset(t *testing.T) {
	pf, docs, _ := concurrencyFixture(t)
	var first Stats
	if _, err := pf.Project(context.Background(), io.Discard, bytes.NewReader(docs[0]), WithStatsInto(&first)); err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		var again Stats
		if _, err := pf.Project(context.Background(), io.Discard, bytes.NewReader(docs[0]), WithStatsInto(&again)); err != nil {
			t.Fatal(err)
		}
		// MatchersBuilt reports the shared plan's table count, constant
		// across runs; every counter must match exactly, including the
		// per-run window high-water mark MaxBufferBytes.
		if again != first {
			t.Fatalf("run %d: stats drifted across pooled reuse:\nfirst: %+v\nagain: %+v", run, first, again)
		}
	}
}

// TestProjectWorkersMatchesSerial checks the public intra-document
// parallel surface: for every worker count, Project with WithWorkers must
// be byte-identical to the serial Project.
func TestProjectWorkersMatchesSerial(t *testing.T) {
	dtdSource, err := DatasetDTD(XMark)
	if err != nil {
		t.Fatal(err)
	}
	// A small chunk keeps segments small, so even a modest document is cut
	// into enough segments to exercise the pipeline at 8 workers.
	pf, err := Compile(dtdSource, "/*, //australia//description#", Options{ChunkSize: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := GenerateBytes(XMark, 256<<10, 11)
	if err != nil {
		t.Fatal(err)
	}
	var wantBuf bytes.Buffer
	var wantStats Stats
	if _, err := pf.Project(context.Background(), &wantBuf, bytes.NewReader(doc), WithStatsInto(&wantStats)); err != nil {
		t.Fatal(err)
	}
	want := wantBuf.Bytes()
	for _, workers := range []int{1, 2, 4, 8} {
		var out bytes.Buffer
		stats, err := pf.Project(context.Background(), &out, bytes.NewReader(doc), WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if !bytes.Equal(out.Bytes(), want) {
			t.Fatalf("workers %d: WithWorkers output differs (%d vs %d bytes)", workers, out.Len(), len(want))
		}
		if stats.BytesWritten != wantStats.BytesWritten {
			t.Errorf("workers %d: BytesWritten = %d, want %d", workers, stats.BytesWritten, wantStats.BytesWritten)
		}
	}
}

// TestProjectParallelConcurrentCallers drives parallel Project calls from
// several goroutines sharing one Prefilter (meaningful under -race).
func TestProjectParallelConcurrentCallers(t *testing.T) {
	pf, docs, want := concurrencyFixture(t)
	var wg sync.WaitGroup
	errc := make(chan error, 6)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := g % len(docs)
			var out bytes.Buffer
			_, err := pf.Project(context.Background(), &out, bytes.NewReader(docs[i]), WithWorkers(2+g%3))
			if err == nil && !bytes.Equal(out.Bytes(), want[i]) {
				err = &mismatchError{goroutine: g, doc: i, got: out.Len(), want: len(want[i])}
			}
			errc <- err
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestProjectOptionsCombine checks that chunk-size overrides and the stats
// sink compose with workers without changing the projection.
func TestProjectOptionsCombine(t *testing.T) {
	pf, docs, want := concurrencyFixture(t)
	for i, doc := range docs {
		for _, opts := range [][]ProjectOption{
			{WithChunkSize(1 << 10)},
			{WithChunkSize(777)},
			{WithWorkers(3), WithChunkSize(1 << 10)},
			{WithAutoWorkers()},
			{nil}, // nil options are ignored
		} {
			var out bytes.Buffer
			var st Stats
			if _, err := pf.Project(context.Background(), &out, bytes.NewReader(doc), append(opts, WithStatsInto(&st))...); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out.Bytes(), want[i]) {
				t.Errorf("doc %d opts %d: output differs (%d vs %d bytes)", i, len(opts), out.Len(), len(want[i]))
			}
			if st.BytesWritten != int64(len(want[i])) {
				t.Errorf("doc %d: WithStatsInto.BytesWritten = %d, want %d", i, st.BytesWritten, len(want[i]))
			}
		}
	}
}

// TestMinParallelInputHonorsOptions checks the size-routing contract: the
// reported parallel threshold reflects the same options the projection will
// run with (chunk-size override, WithWorkers precedence).
func TestMinParallelInputHonorsOptions(t *testing.T) {
	pf, _, _ := concurrencyFixture(t)
	base := pf.MinParallelInput(4)
	small := pf.MinParallelInput(4, WithChunkSize(4096))
	if small >= base {
		t.Errorf("MinParallelInput with a smaller chunk = %d, want < %d", small, base)
	}
	if viaOpt := pf.MinParallelInput(1, WithWorkers(4), WithChunkSize(4096)); viaOpt != small {
		t.Errorf("WithWorkers option = %d, want %d (same as the workers argument)", viaOpt, small)
	}
}
