package smp

// Race-focused tests for the concurrent prefiltering surface: one compiled
// Prefilter driven from many goroutines must produce byte-identical output
// to the serial path, with the pooled per-run engine state never leaking
// between runs. Run with `go test -race` to make the checks meaningful.

import (
	"bytes"
	"strconv"
	"sync"
	"testing"
)

// concurrencyFixture compiles one prefilter and a set of distinct documents
// with their serial projections.
func concurrencyFixture(t *testing.T) (*Prefilter, [][]byte, [][]byte) {
	t.Helper()
	dtdSource, err := DatasetDTD(XMark)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := Compile(dtdSource, "/*, //australia//description#", Options{})
	if err != nil {
		t.Fatal(err)
	}
	const docCount = 4
	docs := make([][]byte, docCount)
	want := make([][]byte, docCount)
	for i := range docs {
		docs[i], err = GenerateBytes(XMark, 96<<10, uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		want[i], _, err = pf.ProjectBytes(docs[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	return pf, docs, want
}

// TestPrefilterConcurrentIdenticalOutput runs one compiled Prefilter from
// many goroutines over a rotating set of documents and asserts every
// projection matches the serial result byte for byte.
func TestPrefilterConcurrentIdenticalOutput(t *testing.T) {
	pf, docs, want := concurrencyFixture(t)

	const goroutines = 16
	const iterations = 6
	errc := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iterations; it++ {
				i := (g + it) % len(docs)
				var out bytes.Buffer
				stats, err := pf.Project(&out, bytes.NewReader(docs[i]))
				if err != nil {
					errc <- err
					return
				}
				if !bytes.Equal(out.Bytes(), want[i]) {
					errc <- &mismatchError{goroutine: g, doc: i, got: out.Len(), want: len(want[i])}
					return
				}
				if stats.BytesRead != int64(len(docs[i])) || stats.BytesWritten != int64(len(want[i])) {
					errc <- &mismatchError{goroutine: g, doc: i, got: int(stats.BytesWritten), want: len(want[i])}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

type mismatchError struct {
	goroutine, doc, got, want int
}

func (e *mismatchError) Error() string {
	return "goroutine " + strconv.Itoa(e.goroutine) + ", doc " + strconv.Itoa(e.doc) +
		": projection size " + strconv.Itoa(e.got) + ", want " + strconv.Itoa(e.want)
}

// TestPrefilterSequentialReuseStatsReset checks that the pooled engine
// state (window buffer, matcher instrumentation) is fully reset between
// runs: repeating the same document must repeat the same counters.
func TestPrefilterSequentialReuseStatsReset(t *testing.T) {
	pf, docs, _ := concurrencyFixture(t)
	_, first, err := pf.ProjectBytes(docs[0])
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		_, again, err := pf.ProjectBytes(docs[0])
		if err != nil {
			t.Fatal(err)
		}
		// MatchersBuilt reports the shared plan's table count, constant
		// across runs; every counter must match exactly, including the
		// per-run window high-water mark MaxBufferBytes.
		if again != first {
			t.Fatalf("run %d: stats drifted across pooled reuse:\nfirst: %+v\nagain: %+v", run, first, again)
		}
	}
}

// TestProjectParallelMatchesSerial checks the public intra-document
// parallel surface: for every worker count, ProjectParallel and
// ProjectBytesParallel must be byte-identical to the serial Project.
func TestProjectParallelMatchesSerial(t *testing.T) {
	dtdSource, err := DatasetDTD(XMark)
	if err != nil {
		t.Fatal(err)
	}
	// A small chunk keeps segments small, so even a modest document is cut
	// into enough segments to exercise the pipeline at 8 workers.
	pf, err := Compile(dtdSource, "/*, //australia//description#", Options{ChunkSize: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := GenerateBytes(XMark, 256<<10, 11)
	if err != nil {
		t.Fatal(err)
	}
	want, wantStats, err := pf.ProjectBytes(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		var out bytes.Buffer
		stats, err := pf.ProjectParallel(&out, bytes.NewReader(doc), workers)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if !bytes.Equal(out.Bytes(), want) {
			t.Fatalf("workers %d: ProjectParallel output differs (%d vs %d bytes)", workers, out.Len(), len(want))
		}
		if stats.BytesWritten != wantStats.BytesWritten {
			t.Errorf("workers %d: BytesWritten = %d, want %d", workers, stats.BytesWritten, wantStats.BytesWritten)
		}
		got, _, err := pf.ProjectBytesParallel(doc, workers)
		if err != nil {
			t.Fatalf("workers %d: ProjectBytesParallel: %v", workers, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("workers %d: ProjectBytesParallel output differs", workers)
		}
	}
}

// TestProjectParallelConcurrentCallers drives ProjectParallel itself from
// several goroutines sharing one Prefilter (meaningful under -race).
func TestProjectParallelConcurrentCallers(t *testing.T) {
	pf, docs, want := concurrencyFixture(t)
	var wg sync.WaitGroup
	errc := make(chan error, 6)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := g % len(docs)
			var out bytes.Buffer
			_, err := pf.ProjectParallel(&out, bytes.NewReader(docs[i]), 2+g%3)
			if err == nil && !bytes.Equal(out.Bytes(), want[i]) {
				err = &mismatchError{goroutine: g, doc: i, got: out.Len(), want: len(want[i])}
			}
			errc <- err
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestProjectMatchesRun checks the streaming Project entry point against
// the pre-existing Run and ProjectBytes paths.
func TestProjectMatchesRun(t *testing.T) {
	pf, docs, want := concurrencyFixture(t)
	for i, doc := range docs {
		var viaProject, viaRun bytes.Buffer
		if _, err := pf.Project(&viaProject, bytes.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
		if _, err := pf.Run(bytes.NewReader(doc), &viaRun); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(viaProject.Bytes(), want[i]) {
			t.Errorf("doc %d: Project output differs from ProjectBytes", i)
		}
		if !bytes.Equal(viaRun.Bytes(), want[i]) {
			t.Errorf("doc %d: Run output differs from ProjectBytes", i)
		}
	}
}
