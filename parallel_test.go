package smp

// Race-focused tests for the concurrent prefiltering surface: one compiled
// Prefilter driven from many goroutines must produce byte-identical output
// to the serial path, with the pooled per-run engine state never leaking
// between runs. Run with `go test -race` to make the checks meaningful.

import (
	"bytes"
	"strconv"
	"sync"
	"testing"
)

// concurrencyFixture compiles one prefilter and a set of distinct documents
// with their serial projections.
func concurrencyFixture(t *testing.T) (*Prefilter, [][]byte, [][]byte) {
	t.Helper()
	dtdSource, err := DatasetDTD(XMark)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := Compile(dtdSource, "/*, //australia//description#", Options{})
	if err != nil {
		t.Fatal(err)
	}
	const docCount = 4
	docs := make([][]byte, docCount)
	want := make([][]byte, docCount)
	for i := range docs {
		docs[i], err = GenerateBytes(XMark, 96<<10, uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		want[i], _, err = pf.ProjectBytes(docs[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	return pf, docs, want
}

// TestPrefilterConcurrentIdenticalOutput runs one compiled Prefilter from
// many goroutines over a rotating set of documents and asserts every
// projection matches the serial result byte for byte.
func TestPrefilterConcurrentIdenticalOutput(t *testing.T) {
	pf, docs, want := concurrencyFixture(t)

	const goroutines = 16
	const iterations = 6
	errc := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iterations; it++ {
				i := (g + it) % len(docs)
				var out bytes.Buffer
				stats, err := pf.Project(&out, bytes.NewReader(docs[i]))
				if err != nil {
					errc <- err
					return
				}
				if !bytes.Equal(out.Bytes(), want[i]) {
					errc <- &mismatchError{goroutine: g, doc: i, got: out.Len(), want: len(want[i])}
					return
				}
				if stats.BytesRead != int64(len(docs[i])) || stats.BytesWritten != int64(len(want[i])) {
					errc <- &mismatchError{goroutine: g, doc: i, got: int(stats.BytesWritten), want: len(want[i])}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

type mismatchError struct {
	goroutine, doc, got, want int
}

func (e *mismatchError) Error() string {
	return "goroutine " + strconv.Itoa(e.goroutine) + ", doc " + strconv.Itoa(e.doc) +
		": projection size " + strconv.Itoa(e.got) + ", want " + strconv.Itoa(e.want)
}

// TestPrefilterSequentialReuseStatsReset checks that the pooled engine
// state (window buffer, matcher instrumentation) is fully reset between
// runs: repeating the same document must repeat the same counters.
func TestPrefilterSequentialReuseStatsReset(t *testing.T) {
	pf, docs, _ := concurrencyFixture(t)
	_, first, err := pf.ProjectBytes(docs[0])
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		_, again, err := pf.ProjectBytes(docs[0])
		if err != nil {
			t.Fatal(err)
		}
		// MatchersBuilt reports the shared plan's table count, constant
		// across runs; every counter must match exactly, including the
		// per-run window high-water mark MaxBufferBytes.
		if again != first {
			t.Fatalf("run %d: stats drifted across pooled reuse:\nfirst: %+v\nagain: %+v", run, first, again)
		}
	}
}

// TestProjectMatchesRun checks the streaming Project entry point against
// the pre-existing Run and ProjectBytes paths.
func TestProjectMatchesRun(t *testing.T) {
	pf, docs, want := concurrencyFixture(t)
	for i, doc := range docs {
		var viaProject, viaRun bytes.Buffer
		if _, err := pf.Project(&viaProject, bytes.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
		if _, err := pf.Run(bytes.NewReader(doc), &viaRun); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(viaProject.Bytes(), want[i]) {
			t.Errorf("doc %d: Project output differs from ProjectBytes", i)
		}
		if !bytes.Equal(viaRun.Bytes(), want[i]) {
			t.Errorf("doc %d: Run output differs from ProjectBytes", i)
		}
	}
}
